"""Execution layer shared by the CLI and the planning server.

:class:`PlanningCore` is the one place a plan request becomes a plan:
``repro plan`` calls it inline, the asyncio server calls it from
executor threads.  Both paths run the identical
:class:`~repro.core.espresso.Espresso` invocation, which is what makes
the service's non-degraded responses bit-identical to the CLI on the
same inputs (the load harness asserts exactly this).

:class:`StrategyCache` memoizes finished plans by canonical job
fingerprint (exact hits, served as non-degraded ``cache`` responses)
and keeps a per-(model, GC)-family index so the circuit breaker's
degradation ladder can serve a *stale* plan — same model and
compressor, decided under different cluster conditions — when the real
planner is unavailable.

:func:`heuristic_plan` is the ladder's last plan-shaped rung: an
alpha-beta greedy built on :func:`~repro.core.fusion.estimate_alpha_beta`'s
link fit.  It compresses exactly the tensors whose bandwidth saving
clearly clears the extra launch cost, prices the result with one F(S)
call, and never returns anything worse than FP32.

The ``run_systems`` / ``validate_suite`` helpers used by ``repro
compare`` and ``repro validate`` live here too (moved from ``cli.py``)
so every multi-job entry point reports *why* a requested parallel
fan-out ran serially instead of silently downgrading.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.config import JobConfig
from repro.core import Espresso
from repro.core.fusion import estimate_alpha_beta
from repro.core.options import Device
from repro.core.parallel import (
    WorkerPool,
    WorkerPoolError,
    run_system_task,
    validate_strategy_task,
)
from repro.core.presets import inter_allgather_option
from repro.core.strategy import (
    CompressionStrategy,
    StrategyEvaluator,
    baseline_strategy,
)
from repro.core.conformance import validate_strategy
from repro.service.api import (
    FleetRequest,
    PlanRequest,
    family_key,
    job_fingerprint,
    strategy_digest,
)
from repro.service.resilience import EvaluatorWorkerError


@dataclass
class CacheEntry:
    """One finished plan, in both in-process and wire-safe forms.

    ``strategy`` is the live object (reusable inside this process);
    ``options_text`` / ``digest`` are the ``describe()``-based forms
    that survive the wire (see :func:`repro.service.api.strategy_digest`).
    """

    fingerprint: str
    family: str
    model_name: str
    strategy: CompressionStrategy
    digest: str
    options_text: Tuple[str, ...]
    iteration_time: float
    baseline_iteration_time: float
    hits: int = 0

    @property
    def num_tensors(self) -> int:
        return len(self.strategy)

    @property
    def compressed_tensors(self) -> int:
        return len(self.strategy.compressed_indices)


def make_entry(
    job: JobConfig,
    strategy: CompressionStrategy,
    iteration_time: float,
    baseline_iteration_time: float,
    fingerprint: Optional[str] = None,
    family: Optional[str] = None,
) -> CacheEntry:
    """Package a finished plan for the cache and the wire."""
    return CacheEntry(
        fingerprint=(
            fingerprint if fingerprint is not None else job_fingerprint(job)
        ),
        family=family if family is not None else family_key(job),
        model_name=job.model.name,
        strategy=strategy,
        digest=strategy_digest(strategy),
        options_text=tuple(o.describe() for o in strategy.options),
        iteration_time=iteration_time,
        baseline_iteration_time=baseline_iteration_time,
    )


class StrategyCache:
    """LRU plan cache with a stale-serving family index.

    Exact lookups key on the canonical job fingerprint and are *not*
    degradation — the cached plan is the plan a fresh run would select
    (planning is deterministic).  ``get_stale`` is the degraded path:
    it returns the most recently cached plan for the same
    (model, GC) family regardless of cluster, for the breaker-open
    window where a structurally-sensible plan now beats an optimal
    plan later.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._family: "OrderedDict[str, str]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> Optional[CacheEntry]:
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        entry.hits += 1
        self.hits += 1
        return entry

    def get_stale(self, family: str) -> Optional[CacheEntry]:
        """The newest cached plan for this (model, GC) family, if any.

        Does not touch hit/miss accounting for exact lookups; stale
        serves are counted separately because they are degraded.
        """
        fingerprint = self._family.get(family)
        if fingerprint is None:
            return None
        entry = self._entries.get(fingerprint)
        if entry is None:
            # The member this family pointed at was evicted.
            del self._family[family]
            return None
        self.stale_hits += 1
        return entry

    def put(self, entry: CacheEntry) -> None:
        self._entries[entry.fingerprint] = entry
        self._entries.move_to_end(entry.fingerprint)
        self._family[entry.family] = entry.fingerprint
        while len(self._entries) > self.max_entries:
            evicted_fp, evicted = self._entries.popitem(last=False)
            self.evictions += 1
            if self._family.get(evicted.family) == evicted_fp:
                del self._family[evicted.family]

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "stale_hits": self.stale_hits,
            "evictions": self.evictions,
        }


class PlanningCore:
    """The one door to the planner for every entry point.

    ``jobs`` and ``check`` mirror the CLI flags; a server and a CLI
    invocation configured the same way run byte-for-byte the same
    selection.
    """

    def __init__(
        self,
        jobs: int = 1,
        check: bool = False,
        ratios: Optional[Sequence[float]] = None,
        error_budget: Optional[float] = None,
    ) -> None:
        self.jobs = max(1, int(jobs))
        self.check = check
        #: Default ratio-ladder knobs applied to every plan; a wire
        #: request carrying its own values overrides them per call.
        self.ratios = tuple(ratios) if ratios else None
        self.error_budget = error_budget

    def plan_job_detailed(
        self,
        job: JobConfig,
        cancel_check: Optional[Callable[[], None]] = None,
        ratios: Optional[Sequence[float]] = None,
        error_budget: Optional[float] = None,
    ):
        """Run the full Espresso selection; return ``(planner, result)``.

        The CLI's ``--check`` path needs the planner back (its evaluator
        carries the timelines-checked counter and the warm memo cache
        the post-selection audit reuses); everything else should call
        :meth:`plan_job`.

        ``cancel_check`` (typically ``CancelToken.check``) is installed
        on the evaluator so deadline expiry aborts the selection from
        inside its innermost pricing loops.  A worker-pool death
        surfaces as :class:`EvaluatorWorkerError` so callers retry it
        like any other evaluator failure.
        """
        planner = Espresso(
            job,
            check=self.check,
            jobs=self.jobs,
            ratios=self.ratios if ratios is None else tuple(ratios),
            error_budget=(
                self.error_budget if error_budget is None else error_budget
            ),
        )
        if cancel_check is not None:
            planner.evaluator.cancel_check = cancel_check
        try:
            return planner, planner.select_strategy()
        except WorkerPoolError as error:
            raise EvaluatorWorkerError(f"evaluator pool died: {error}") from None

    def plan_job(
        self,
        job: JobConfig,
        cancel_check: Optional[Callable[[], None]] = None,
        ratios: Optional[Sequence[float]] = None,
        error_budget: Optional[float] = None,
    ):
        """Run the full Espresso selection for ``job``."""
        return self.plan_job_detailed(
            job,
            cancel_check=cancel_check,
            ratios=ratios,
            error_budget=error_budget,
        )[1]

    def plan_request(
        self,
        request: PlanRequest,
        cancel_check: Optional[Callable[[], None]] = None,
    ) -> CacheEntry:
        """Fresh plan for a wire request, packaged for cache + response."""
        job = request.build_job()
        result = self.plan_job(
            job,
            cancel_check=cancel_check,
            ratios=tuple(request.ratios) if request.ratios else None,
            error_budget=request.error_budget,
        )
        return make_entry(
            job,
            result.strategy,
            result.iteration_time,
            result.baseline_iteration_time,
        )

    def plan_fleet_request(
        self,
        request: FleetRequest,
        cancel_check: Optional[Callable[[], None]] = None,
    ):
        """Full joint fleet plan for a wire request.

        Same configuration contract as :meth:`plan_job_detailed`: the
        server and ``repro fleet`` run the identical
        :func:`~repro.core.fleet.plan_fleet` invocation, with the
        cancel seam threaded into every planner and evaluator so the
        deadline fires inside the pricing loops.  A worker-pool death
        surfaces as :class:`EvaluatorWorkerError` for the retry loop.
        """
        from repro.core.fleet import plan_fleet

        fleet = request.build_fleet()
        try:
            return plan_fleet(
                fleet,
                max_rounds=request.max_rounds,
                check=self.check,
                jobs=self.jobs,
                cancel_check=cancel_check,
            )
        except WorkerPoolError as error:
            raise EvaluatorWorkerError(
                f"evaluator pool died: {error}"
            ) from None


def heuristic_fleet(fleet):
    """Degraded fleet plan: one heuristic rung per tenant, fairly priced.

    The fleet analogue of :func:`heuristic_plan` for the server's
    degradation ladder: each tenant gets the alpha-beta greedy plan
    (milliseconds, no planner), and the assignment is then priced under
    its own contention by the same one-shot evaluation the joint
    planner uses — so the degraded response's numbers mean the same
    thing as a fresh one's, just for a worse assignment.

    Returns a :class:`~repro.core.fleet.FleetPlanResult` with
    ``mode="heuristic"``.
    """
    from repro.core.fleet import (
        FleetPlanResult,
        TenantPlan,
        evaluate_assignment,
    )

    jobs_by_name = fleet.jobs()
    strategies = {
        name: heuristic_plan(job)[0] for name, job in jobs_by_name.items()
    }
    evaluation = evaluate_assignment(fleet, strategies)
    tenants = tuple(
        TenantPlan(
            name=name,
            model=jobs_by_name[name].model.name,
            strategy=strategies[name],
            nominal_time=evaluation.nominal_times[name],
            contended_time=evaluation.contended_times[name],
            throughput=evaluation.throughputs[name],
            contention=evaluation.models[name],
            source="heuristic",
        )
        for name in sorted(jobs_by_name)
    )
    return FleetPlanResult(
        fleet=fleet,
        tenants=tenants,
        mode="heuristic",
        converged=False,
        oscillated=False,
        rounds=0,
        aggregate_throughput=evaluation.aggregate_throughput,
        selfish_aggregate_throughput=evaluation.aggregate_throughput,
        timelines_checked=evaluation.timelines_checked,
        parallel_disabled_reason=None,
        plan_seconds=0.0,
    )


def heuristic_plan(
    job: JobConfig,
) -> Tuple[CompressionStrategy, float, float]:
    """Alpha-beta greedy fallback plan (degradation ladder, last rung).

    Fits the link's per-message cost ``alpha + beta * elements``
    (:func:`~repro.core.fusion.estimate_alpha_beta`), then compresses on
    the GPU exactly the tensors whose bandwidth saving
    ``beta * elements * (1 - kept_fraction)`` clears twice the launch
    overhead a compressed pipeline adds (its two-hop collective costs
    roughly two extra launches).  One F(S) call prices the result;
    whichever of {greedy, FP32} is faster is returned, so the fallback
    is never worse than not compressing.

    Returns ``(strategy, iteration_time, baseline_iteration_time)``.
    Cost: one alpha-beta fit plus at most two timeline evaluations —
    milliseconds, independent of the planner's search space.
    """
    baseline = baseline_strategy(job.model.num_tensors)
    evaluator = StrategyEvaluator(job)
    baseline_time = evaluator.iteration_time(baseline)
    alpha, beta = estimate_alpha_beta(job)
    if beta <= 0.0:
        # Single GPU (or a degenerate link fit): no collective runs, so
        # compression has nothing to save.
        return baseline, baseline_time, baseline_time
    compressor = job.build_compressor()
    option = inter_allgather_option(Device.GPU)
    strategy = baseline
    for index, tensor in enumerate(job.model.tensors):
        kept = compressor.compressed_nbytes(tensor.num_elements) / tensor.nbytes
        saved = beta * tensor.num_elements * max(0.0, 1.0 - kept)
        if saved > 2.0 * alpha:
            strategy = strategy.replace(index, option)
    if not strategy.compressed_indices:
        return baseline, baseline_time, baseline_time
    iteration_time = evaluator.iteration_time(strategy)
    if iteration_time >= baseline_time:
        return baseline, baseline_time, baseline_time
    return strategy, iteration_time, baseline_time


def run_systems(
    job: JobConfig, systems: Sequence, jobs: int
) -> Tuple[List, Optional[str]]:
    """Each system's BaselineResult, fanned out when ``jobs > 1``.

    Workers only run the (independent, deterministic) per-system
    planning; order and results match the serial loop exactly.  The
    second element says why a requested fan-out ran serially (``None``
    when it ran parallel or was never requested).
    """
    if jobs > 1 and len(systems) > 1:
        with WorkerPool(jobs) as pool:
            if pool.active:
                try:
                    results = pool.run(
                        run_system_task,
                        [(system_cls, job) for system_cls in systems],
                    )
                    return results, pool.disabled_reason
                except WorkerPoolError:
                    pass
            reason = pool.disabled_reason
    else:
        reason = None
    return [system_cls().run(job) for system_cls in systems], reason


def validate_suite(
    job: JobConfig, named: Sequence, oracle: bool, jobs: int
) -> Tuple[List, Optional[str]]:
    """Conformance reports for ``named`` strategies, fanned out when
    ``jobs > 1`` (one strategy's full battery per worker task).  The
    second element is the serial-downgrade reason, as in
    :func:`run_systems`."""
    if jobs > 1 and len(named) > 1:
        with WorkerPool(jobs) as pool:
            if pool.active:
                try:
                    results = pool.run(
                        validate_strategy_task,
                        [
                            (job, name, strategy.options, oracle)
                            for name, strategy in named
                        ],
                    )
                    return results, pool.disabled_reason
                except WorkerPoolError:
                    pass
            reason = pool.disabled_reason
    else:
        reason = None
    evaluator = StrategyEvaluator(job)
    return [
        validate_strategy(evaluator, strategy, name=name, oracle=oracle)
        for name, strategy in named
    ], reason


__all__ = [
    "CacheEntry",
    "PlanningCore",
    "StrategyCache",
    "heuristic_fleet",
    "heuristic_plan",
    "make_entry",
    "run_systems",
    "validate_suite",
]
