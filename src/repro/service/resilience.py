"""Failure-handling primitives for the planning service (DESIGN.md §5.9).

Four small, separately-testable pieces:

* :class:`Deadline` / :class:`CancelToken` — cooperative cancellation.
  The planner's inner pricing loops call ``token.check()`` (installed on
  :class:`~repro.core.strategy.StrategyEvaluator` as ``cancel_check``),
  which raises :class:`DeadlineExceeded` the moment the budget runs out,
  so a slow evaluation stops mid-sweep instead of burning the worker
  until it finishes.
* :class:`RetryPolicy` — bounded retries with the repo-wide exponential
  backoff (:func:`repro.utils.backoff.backoff_delay`), shared with
  training supervision and pool restarts.
* :class:`CircuitBreaker` — CLOSED / OPEN / HALF_OPEN.  After K
  *consecutive* evaluator failures or deadline misses the breaker
  opens and the server stops feeding the planner, serving degraded
  answers instead; after a cooldown it lets exactly one probe through
  (half-open) and closes again only if the probe succeeds.
* :class:`ChaosSchedule` — deterministic fault injection for the load
  harness: a seeded hash of (request id, attempt) decides whether an
  evaluation is killed or slowed, so a bench run is exactly
  reproducible from its seed regardless of server concurrency.

Everything takes an injectable ``clock`` so tests drive time by hand.
The breaker is only ever touched from the server's event loop (one
thread), so it carries no lock — noted here so nobody "fixes" that.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.utils.backoff import backoff_delay

#: Breaker states (also the wire spelling in health payloads).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class DeadlineExceeded(Exception):
    """A request ran past its deadline (one-line diagnostic)."""


class RequestCancelled(Exception):
    """A request was cancelled for a reason other than its deadline
    (e.g. server drain)."""


class EvaluatorWorkerError(RuntimeError):
    """An evaluator worker died mid-request.

    The retriable failure class: the planning pipeline catches exactly
    this (chaos kills raise it, and real
    :class:`~repro.core.parallel.WorkerPoolError` failures are wrapped
    into it) and retries with backoff while budget remains.
    """


class Deadline:
    """A monotonic-clock budget for one request.

    ``budget_s=None`` means unbounded — every query then reports
    infinite remaining time and ``check()`` never raises.
    """

    def __init__(
        self,
        budget_s: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError(f"deadline budget must be > 0, got {budget_s}")
        self.budget_s = budget_s
        self._clock = clock
        self.started = clock()

    def elapsed(self) -> float:
        return self._clock() - self.started

    def remaining(self) -> float:
        if self.budget_s is None:
            return float("inf")
        return self.budget_s - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self) -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:.3f}s exceeded "
                f"({self.elapsed():.3f}s elapsed)"
            )


class CancelToken:
    """Cooperative cancellation handle threaded into the evaluator.

    ``check()`` is the single call sites use: it raises
    :class:`RequestCancelled` after :meth:`cancel`, else defers to the
    deadline (if any).  The flag-set happens on the event-loop thread
    while ``check()`` runs on an executor thread; a plain bool is safe
    there (atomic store, no compound update) and the consumer only needs
    eventual visibility.
    """

    def __init__(self, deadline: Optional[Deadline] = None) -> None:
        self.deadline = deadline
        self.cancelled = False
        self.reason = ""

    def cancel(self, reason: str) -> None:
        self.cancelled = True
        self.reason = reason

    def check(self) -> None:
        if self.cancelled:
            raise RequestCancelled(self.reason or "request cancelled")
        if self.deadline is not None:
            self.deadline.check()


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a dead evaluator, and how long to wait.

    Delays follow the repo-wide doubling schedule: attempt 1 waits
    ``backoff_base``, attempt 2 twice that, ..., clamped to
    ``backoff_cap`` so a deep retry never sleeps past the cap.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        return backoff_delay(attempt, self.backoff_base, cap=self.backoff_cap)


class CircuitBreaker:
    """K-consecutive-failures breaker with half-open probing.

    State machine::

        CLOSED --(K consecutive failures)--> OPEN
        OPEN --(cooldown elapses; next allow())--> HALF_OPEN (one probe)
        HALF_OPEN --(probe succeeds)--> CLOSED
        HALF_OPEN --(probe fails)--> OPEN (cooldown restarts)

    ``allow()`` answers "may this request use the real planner?"; a
    refusal routes the request down the degradation ladder without
    touching breaker state.  Any success resets the consecutive-failure
    count, so only uninterrupted failure runs trip the breaker.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._probe_inflight = False
        # Lifetime counters, surfaced via the health endpoint.
        self.opens = 0
        self.probes = 0
        self.failures = 0
        self.successes = 0

    def allow(self) -> bool:
        """May the caller attempt a real planner run right now?"""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            assert self.opened_at is not None
            if self._clock() - self.opened_at >= self.cooldown_s:
                self.state = HALF_OPEN
                self._probe_inflight = True
                self.probes += 1
                return True
            return False
        # HALF_OPEN: exactly one probe at a time.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        self.probes += 1
        return True

    def record_success(self) -> None:
        self.successes += 1
        self.consecutive_failures = 0
        self._probe_inflight = False
        self.state = CLOSED
        self.opened_at = None

    def record_failure(self) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The probe failed: reopen and restart the cooldown.
            self._open()
        elif (
            self.state == CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._open()

    def _open(self) -> None:
        self.state = OPEN
        self.opened_at = self._clock()
        self._probe_inflight = False
        self.opens += 1

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "cooldown_s": self.cooldown_s,
            "opens": self.opens,
            "probes": self.probes,
            "failures": self.failures,
            "successes": self.successes,
        }


# Chaos actions returned by ChaosSchedule.action().
KILL = "kill"
SLOW = "slow"


@dataclass(frozen=True)
class ChaosSchedule:
    """Seeded, replayable fault injection for the load harness.

    Each (request id, attempt) pair hashes — via a string-seeded
    :class:`random.Random`, which CPython derives deterministically from
    the seed text — to at most one action:

    * ``"kill"``: the evaluation raises :class:`EvaluatorWorkerError`
      before doing any work, exercising the retry path.  Kills only
      fire on attempts below ``kill_attempts``, so a killed request
      heals on retry unless the schedule is configured to keep killing.
    * ``"slow"``: the evaluation sleeps ``slow_seconds`` first (in small
      chunks, checking its cancel token), exercising deadline pressure.

    Keying on the *client-chosen request id* rather than a server-side
    sequence number makes a run reproducible from the seed alone, no
    matter how server workers interleave.
    """

    seed: int = 0
    kill_rate: float = 0.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.25
    kill_attempts: int = 1

    def __post_init__(self) -> None:
        for name in ("kill_rate", "slow_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def active(self) -> bool:
        return self.kill_rate > 0 or self.slow_rate > 0

    def action(self, request_id: str, attempt: int) -> Optional[str]:
        """The injected fault for this (request, attempt), if any."""
        if not self.active:
            return None
        rng = random.Random(f"chaos:{self.seed}:{request_id}:{attempt}")
        roll = rng.random()
        if roll < self.kill_rate:
            return KILL if attempt < self.kill_attempts else None
        if roll < self.kill_rate + self.slow_rate:
            return SLOW
        return None

    def describe(self) -> str:
        return (
            f"seed={self.seed} kill_rate={self.kill_rate} "
            f"slow_rate={self.slow_rate} slow_seconds={self.slow_seconds} "
            f"kill_attempts={self.kill_attempts}"
        )


__all__ = [
    "CLOSED",
    "CancelToken",
    "ChaosSchedule",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "EvaluatorWorkerError",
    "HALF_OPEN",
    "KILL",
    "OPEN",
    "RequestCancelled",
    "RetryPolicy",
    "SLOW",
]
