"""Planner-as-a-service layer (DESIGN.md §5.9).

The CLI's plan/compare/validate entry points and the ``repro serve``
asyncio server share one execution core, so a served plan and a
CLI-selected plan for the same job are the same plan, bit for bit.

Modules:

* :mod:`repro.service.api` — wire vocabulary: requests, responses,
  canonical job fingerprints, cross-process strategy digests.
* :mod:`repro.service.core` — the execution layer: PlanningCore,
  the LRU strategy cache with stale-family index, the alpha-beta
  heuristic fallback, and the compare/validate fan-out helpers.
* :mod:`repro.service.resilience` — deadlines, cancel tokens, retry
  backoff, the circuit breaker, and seeded chaos injection.
* :mod:`repro.service.server` — the asyncio JSON-lines server with
  admission control, retries, circuit-broken degradation, health
  introspection, and graceful drain.
"""

from repro.service.api import (
    PlanRequest,
    PlanResponse,
    RequestError,
    family_key,
    job_fingerprint,
    strategy_digest,
)
from repro.service.core import (
    CacheEntry,
    PlanningCore,
    StrategyCache,
    heuristic_plan,
    run_systems,
    validate_suite,
)
from repro.service.resilience import (
    CancelToken,
    ChaosSchedule,
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    EvaluatorWorkerError,
    RetryPolicy,
)
from repro.service.server import PlanningServer, ServerConfig, serve

__all__ = [
    "CacheEntry",
    "CancelToken",
    "ChaosSchedule",
    "CircuitBreaker",
    "Deadline",
    "DeadlineExceeded",
    "EvaluatorWorkerError",
    "PlanningCore",
    "PlanningServer",
    "PlanRequest",
    "PlanResponse",
    "RequestError",
    "RetryPolicy",
    "ServerConfig",
    "StrategyCache",
    "family_key",
    "heuristic_plan",
    "job_fingerprint",
    "run_systems",
    "serve",
    "strategy_digest",
    "validate_suite",
]
