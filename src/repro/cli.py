"""Command-line interface: plan a compression strategy from the shell.

Examples::

    python -m repro plan --model gpt2 --gc dgc --ratio 0.01 \\
        --testbed nvlink --machines 8
    python -m repro plan --model vgg16 --robust --objective worst
    python -m repro compare --model lstm --gc efsignsgd --testbed pcie
    python -m repro faults --model bert-base --gc dgc --ratio 0.01
    python -m repro fleet --mix pcie-trio --check
    python -m repro fleet --tenant a:lstm:dgc:0.01 --tenant b:vgg16:topk:0.01
    python -m repro models
    python -m repro options --mode uniform
    python -m repro serve --workers 2 --queue-limit 16 --deadline 5

``plan`` also accepts the paper's three config files instead of names::

    python -m repro plan --model-config model.json --gc-config gc.json \\
        --system-config system.json

Config-file errors (missing file, malformed JSON, missing fields) exit
with code 2 and a one-line message.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, List, Optional

from repro.baselines import ALL_SYSTEMS, FP32, HiPress, UpperBound
from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.cluster.tenancy import FleetSpec, TenantSpec, load_fleet
from repro.config import (
    GCInfo,
    JobConfig,
    SystemInfo,
    load_cluster,
    load_gc,
    load_model,
)
from repro.core import Espresso
from repro.core.conformance import (
    conformance_strategies,
    validate_strategy,
)
from repro.core.fleet import example_mixes, plan_fleet
from repro.core.fusion import (
    FusionPlanner,
    PlanArtifact,
    StalePlanError,
    fused_job,
    load_plan,
    save_plan,
)
from repro.core.options import DEFAULT_RATIO_LADDER, Device
from repro.core.robust import (
    OBJECTIVES,
    DegradationTable,
    robust_select,
    sensitivity_sweep,
)
from repro.core.strategy import StrategyEvaluator, baseline_strategy
from repro.core.tree import search_space_size
from repro.service.core import PlanningCore, run_systems, validate_suite
from repro.service.resilience import ChaosSchedule, RetryPolicy
from repro.service.server import ServerConfig, serve
from repro.sim.faults import ensemble_by_name
from repro.sim.trace import write_chrome_trace
from repro.sim.validate import ConformanceError
from repro.models import available_models, get_model
from repro.training.chaos import (
    TrainingJobSpec,
    corruption_drill,
    run_inprocess,
    run_sigkill,
    run_uninterrupted,
    sample_crash_steps,
)
from repro.training.checkpoint import (
    CheckpointError,
    checkpoint_step,
    list_checkpoints,
)
from repro.training.elastic import ElasticController, MembershipEvent
from repro.utils import format_bytes, render_table

#: Exit code for unusable command-line inputs (bad config files), the
#: same convention argparse uses for unparseable arguments.
EXIT_USAGE = 2


class CLIConfigError(Exception):
    """A config file the user pointed at cannot be used (exit code 2)."""


def _load_config(loader: Callable, path: str, what: str):
    """Run a config ``loader``, translating failures to one-line errors."""
    try:
        return loader(path)
    except FileNotFoundError:
        raise CLIConfigError(f"{what} config not found: {path}") from None
    except IsADirectoryError:
        raise CLIConfigError(f"{what} config is a directory: {path}") from None
    except json.JSONDecodeError as error:
        raise CLIConfigError(
            f"{what} config {path}: malformed JSON ({error})"
        ) from None
    except (KeyError, TypeError, ValueError) as error:
        raise CLIConfigError(f"{what} config {path}: {error}") from None


def _build_job(args: argparse.Namespace) -> JobConfig:
    if args.model_config:
        model = _load_config(load_model, args.model_config, "model")
    else:
        model = get_model(args.model)
    if args.gc_config:
        gc = _load_config(load_gc, args.gc_config, "GC")
    else:
        params = {}
        if args.ratio is not None:
            params["ratio"] = args.ratio
        gc = GCInfo(args.gc, params)
    if args.system_config:
        cluster = _load_config(load_cluster, args.system_config, "system")
    else:
        factory = nvlink_100g_cluster if args.testbed == "nvlink" else pcie_25g_cluster
        cluster = factory(num_machines=args.machines, gpus_per_machine=args.gpus)
    job = JobConfig(model=model, gc=gc, system=SystemInfo(cluster=cluster))
    # Instantiate the compressor eagerly: a typo'd GC parameter or an
    # out-of-range ratio surfaces here as a one-line exit-2 diagnostic
    # instead of a traceback from deep inside the planner.
    try:
        job.build_compressor()
    except ValueError as error:
        raise CLIConfigError(str(error)) from None
    return job


def _parse_ratios(value: Optional[str]):
    """``--ratios`` parser: None, 'default', or a comma list of floats."""
    if value is None:
        return None
    if value == "default":
        return DEFAULT_RATIO_LADDER
    try:
        ratios = tuple(
            float(part) for part in value.split(",") if part.strip()
        )
    except ValueError:
        raise CLIConfigError(
            f"--ratios wants a comma-separated list of floats, got {value!r}"
        ) from None
    if not ratios:
        raise CLIConfigError("--ratios got an empty list")
    for ratio in ratios:
        if not 0.0 < ratio <= 1.0:
            raise CLIConfigError(
                f"--ratios entries must be in (0, 1], got {ratio}"
            )
    return ratios


def _add_job_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="gpt2", choices=available_models())
    parser.add_argument("--gc", default="dgc", help="compression algorithm name")
    parser.add_argument("--ratio", type=float, default=None,
                        help="sparsification ratio (for randomk/topk/dgc)")
    parser.add_argument("--testbed", default="nvlink", choices=("nvlink", "pcie"))
    parser.add_argument("--machines", type=int, default=8)
    parser.add_argument("--gpus", type=int, default=8, help="GPUs per machine")
    parser.add_argument("--model-config", default=None,
                        help="model-information JSON (overrides --model)")
    parser.add_argument("--gc-config", default=None,
                        help="GC-information JSON (overrides --gc/--ratio)")
    parser.add_argument("--system-config", default=None,
                        help="system-information JSON (overrides --testbed)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the strategy search "
                             "(clamped to the host's core count; results "
                             "are bit-identical for every N)")


def _print_stats(result) -> None:
    stats = result.stats
    print("Fast evaluation layer:")
    rows = [
        ("F(S) calls", f"{stats.fs_calls:,}"),
        ("answered without simulation", f"{stats.cache_hit_rate:.1%} "
                                        f"(memo + dedup + pruned)"),
        ("memo cache hits", f"{stats.cache_hits:,} "
                            f"({stats.memo_hit_rate:.1%})"),
        ("full simulations", f"{stats.full_sims:,}"),
        ("incremental simulations", f"{stats.incremental_sims:,}"),
        ("base rebuilds", f"{stats.rebases:,}"),
        ("events simulated", f"{stats.events_full + stats.events_replayed:,}"),
        ("events reused via prefix", f"{stats.events_reused:,} "
                                     f"({stats.prefix_reuse_fraction:.1%})"),
    ]
    print(render_table(["counter", "value"], rows))
    print()
    if stats.batch_calls:
        batch_rows = [
            ("pricing calls", f"{stats.batch_calls:,}"),
            ("candidates priced", f"{stats.batch_candidates:,}"),
            ("pruned by lower bound", f"{stats.batch_pruned:,} "
                                      f"({stats.batch_prune_rate:.1%})"),
            ("answered by dedup", f"{stats.batch_dedup_hits:,}"),
            ("scalar fallbacks", f"{stats.batch_fallbacks:,}"),
        ]
        print(render_table(["batch pricing", "value"], batch_rows))
        print()
    if stats.parallel_requested > 1:
        worker_rows = [
            ("requested width", f"{stats.parallel_requested}"),
            ("effective width", f"{stats.parallel_jobs}"),
            ("pricing tasks shipped", f"{stats.parallel_tasks:,}"),
            ("fan-out wait", f"{stats.fanout_seconds:.3f} s"),
            ("merge time", f"{stats.merge_seconds:.3f} s"),
        ]
        if stats.parallel_disabled_reason:
            worker_rows.append(("serial because",
                                stats.parallel_disabled_reason))
        for pid, count in sorted(stats.worker_evaluations.items()):
            worker_rows.append((f"evaluations by worker {pid}", f"{count:,}"))
        print(render_table(["parallel", "value"], worker_rows))
        print()
    phases = [
        ("Algorithm 1 (GPU decision)", result.gpu_selection_seconds),
        ("Algorithm 2 (CPU offload)", result.offload_selection_seconds),
        (f"refinement ({result.refinement_sweeps_run} sweeps)",
         result.refinement_seconds),
        ("total selection", result.selection_seconds),
    ]
    print(render_table(
        ["phase", "seconds"],
        [(name, f"{seconds:.3f}") for name, seconds in phases],
    ))


def _print_strategy_table(job: JobConfig, strategy) -> None:
    rows = []
    pinned = any(
        strategy[index].ratio is not None
        for index in strategy.compressed_indices
    )
    for index in strategy.compressed_indices:
        tensor = job.model.tensors[index]
        option = strategy[index]
        device = "CPU" if option.uses_device(Device.CPU) else "GPU"
        scope = "intra+inter" if option.compresses_intra else (
            "inter" if option.compresses_inter else "intra"
        )
        row = (tensor.name, format_bytes(tensor.nbytes), device, scope)
        if pinned:
            ratio = option.ratio
            row += (f"{ratio:g}" if ratio is not None else "default",)
        rows.append(row)
    if rows:
        headers = ["tensor", "size", "device", "scope"]
        if pinned:
            headers.append("ratio")
        print(render_table(headers, rows, title="Compressed tensors:"))
    else:
        print("No tensor benefits from compression on this job.")


def cmd_plan_robust(args: argparse.Namespace) -> int:
    job = _build_job(args)
    ensemble = ensemble_by_name(args.ensemble)
    result = robust_select(
        job,
        ensemble=ensemble,
        objective=args.objective,
        cvar_alpha=args.cvar_alpha,
        check=args.check,
        jobs=args.jobs,
    )
    print(result.summary())
    print()
    rows = [
        (name, f"{seconds * 1e3:.2f} ms")
        for name, seconds in result.per_fault_times
    ]
    print(render_table(
        ["fault", "iteration"], rows,
        title=f"Selected strategy across the {args.ensemble!r} ensemble:",
    ))
    print()
    _print_strategy_table(job, result.strategy)
    return 0


def _print_fusion_stats(result) -> None:
    rows = [
        (
            candidate.name,
            f"{candidate.plan.num_groups}",
            f"{candidate.iteration_time * 1e3:.3f} ms",
            "<-- selected" if candidate.plan is result.plan else "",
        )
        for candidate in result.candidates
    ]
    print(render_table(
        ["plan", "groups", "iteration", ""], rows,
        title="Fusion candidate plans (each fully planned by Espresso):",
    ))
    print(
        f"boundary refinement: {result.sweep_trials} trial move(s), "
        f"{result.sweep_accepts} accepted"
    )
    print()


def cmd_plan_fusion(
    args: argparse.Namespace, job: JobConfig, ratios=None
) -> int:
    plan = None
    if args.load:
        artifact = load_plan(args.load)
        artifact.check_against(job.model)  # StalePlanError -> exit 2
        plan = artifact.plan()
    planner = FusionPlanner(
        job,
        jobs=args.jobs,
        check=args.check,
        plan=plan,
        ratios=ratios,
        error_budget=args.error_budget,
    )
    try:
        result = planner.select_strategy()
    except ConformanceError as error:
        print(f"CONFORMANCE FAILURE during planning:\n{error}")
        return 1
    print(result.summary())
    print(result.result.summary())
    print()
    fjob = fused_job(job, result.plan)
    if args.check:
        # Every timeline the candidate planners materialized was checked
        # in-line; finish by auditing the selected *fused* strategy end
        # to end (invariants + oracle + incremental exactness) on the
        # fused job — the battery runs unchanged, a fused group simply
        # is a tensor to it.
        report = validate_strategy(
            StrategyEvaluator(fjob), result.strategy, name="selected"
        )
        if not report.ok:
            print("conformance: FAILED on the selected fused strategy")
            for violation in report.violations:
                print(f"  {violation}")
            if not report.oracle_exact:
                print("  [oracle] engine timeline != reference simulation")
            if not report.incremental_exact:
                print("  [incremental] delta-simulator != engine timeline")
            return 1
        print("conformance: selected fused timeline checked, 0 violations")
        print()
    if args.stats:
        _print_fusion_stats(result)
        _print_stats(result.result)
        print()
    if args.save:
        save_plan(args.save, PlanArtifact.from_result(job, result))
        print(f"fusion plan saved to {args.save}")
        print()
    _print_strategy_table(fjob, result.strategy)
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    if args.robust:
        return cmd_plan_robust(args)
    job = _build_job(args)
    if args.save and not (args.fusion or args.load):
        raise CLIConfigError("--save requires --fusion")
    ratios = _parse_ratios(args.ratios)
    if args.error_budget is not None and not 0.0 <= args.error_budget <= 1.0:
        raise CLIConfigError(
            f"--error-budget must be in [0, 1], got {args.error_budget}"
        )
    if args.fusion or args.load:
        return cmd_plan_fusion(args, job, ratios=ratios)
    core = PlanningCore(
        jobs=args.jobs,
        check=args.check,
        ratios=ratios,
        error_budget=args.error_budget,
    )
    try:
        planner, result = core.plan_job_detailed(job)
    except ConformanceError as error:
        print(f"CONFORMANCE FAILURE during planning:\n{error}")
        return 1
    print(result.summary())
    if result.ratio_laddered:
        fixed = result.fixed_ratio_iteration_time
        print(
            f"ratio ladder: fixed-ratio baseline "
            f"{fixed * 1e3:.2f} ms -> laddered "
            f"{result.iteration_time * 1e3:.2f} ms "
            f"({(fixed / result.iteration_time - 1) * 100:+.1f}%)"
        )
    if result.error_budget is not None:
        print(
            f"error budget: {result.strategy_error:.4f} of "
            f"{result.error_budget:g} spent "
            f"({result.error_budget_utilization:.1%} utilization)"
        )
    print()
    if args.check:
        # Every timeline the planner materialized was checked in-line;
        # finish by auditing the *selected* strategy end to end
        # (invariants + oracle + incremental exactness).
        report = validate_strategy(
            planner.evaluator, result.strategy, name="selected"
        )
        checked = planner.evaluator.timelines_checked + 1
        if not report.ok:
            print(f"conformance: FAILED on the selected strategy")
            for violation in report.violations:
                print(f"  {violation}")
            if not report.oracle_exact:
                print("  [oracle] engine timeline != reference simulation")
            if not report.incremental_exact:
                print("  [incremental] delta-simulator != engine timeline")
            return 1
        print(f"conformance: {checked} timelines checked, 0 violations")
        print()
    if args.stats:
        _print_stats(result)
        print()
    _print_strategy_table(job, result.strategy)
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    job = _build_job(args)
    ensemble = ensemble_by_name(args.ensemble)
    espresso = Espresso(job, jobs=args.jobs).select_strategy().strategy
    strategies = [
        ("espresso", espresso),
        ("fp32", baseline_strategy(job.model.num_tensors)),
    ]
    for system_cls in (HiPress,):
        baseline = system_cls().run(job)
        strategies.append((baseline.name.lower(), baseline.strategy))
    report = sensitivity_sweep(
        job, strategies, ensemble=ensemble, check=args.check, jobs=args.jobs
    )
    headers = ["fault"] + [name for name, _ in strategies]
    rows = []
    for fault_name in report.fault_names:
        row = [fault_name]
        for entry in report.strategies:
            value = entry.time_under(fault_name)
            row.append(
                f"{value * 1e3:.2f} ms ({entry.overhead_under(fault_name):+.1%})"
            )
        rows.append(tuple(row))
    print(render_table(
        headers, rows,
        title=f"Fault sensitivity: {job.model.name} + {job.gc.algorithm}, "
              f"{job.system.cluster.total_gpus} GPUs "
              f"({job.system.cluster.interconnect}) — "
              f"iteration time (overhead vs own nominal)",
    ))
    print()
    for entry in report.strategies:
        print(
            f"{entry.name}: worst case {entry.worst_time * 1e3:.2f} ms "
            f"under {entry.worst_fault!r} "
            f"({entry.overhead_under(entry.worst_fault):+.1%} vs nominal)"
        )
    if args.jobs > 1 and report.parallel_disabled_reason:
        print(f"note: --jobs {args.jobs} ran serially: "
              f"{report.parallel_disabled_reason}")
    if args.check:
        print()
        print(
            f"conformance: {report.timelines_checked} faulted timelines "
            f"checked, 0 violations"
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    job = _build_job(args)
    rows = []
    systems = list(ALL_SYSTEMS)
    if args.upper_bound:
        systems.append(UpperBound)
    checker = StrategyEvaluator(job, check=True) if args.check else None
    checked = 0
    results, _ = run_systems(job, systems, args.jobs)
    for result in results:
        if checker is not None:
            try:
                checker.timeline(result.strategy)
            except ConformanceError as error:
                print(f"CONFORMANCE FAILURE on {result.name}:\n{error}")
                return 1
            checked += 1
        rows.append(
            (
                result.name,
                f"{result.throughput:,.0f} {job.model.sample_unit}/s",
                f"{result.scaling_factor:.2f}",
            )
        )
    print(render_table(["system", "throughput", "scaling factor"], rows,
                       title=f"{job.model.name} + {job.gc.algorithm}, "
                             f"{job.system.cluster.total_gpus} GPUs"))
    if checker is not None:
        print(f"conformance: {checked} system timelines checked, 0 violations")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    job = _build_job(args)
    oracle = not args.skip_oracle
    if args.strategy == "espresso":
        selected = Espresso(job, jobs=args.jobs).select_strategy().strategy
        named = [("espresso", selected)]
    elif args.strategy == "all":
        named = conformance_strategies(job.model.num_tensors)
    else:
        suite = dict(conformance_strategies(job.model.num_tensors))
        named = [(args.strategy, suite[args.strategy])]
    reports, disabled_reason = validate_suite(job, named, oracle, args.jobs)

    rows = []
    failures = 0
    for report in reports:
        if not report.ok:
            failures += 1
        rows.append(
            (
                report.name,
                f"{report.num_stages}",
                f"{report.makespan * 1e3:.2f} ms",
                "ok" if not report.violations else f"{len(report.violations)} violations",
                ("exact" if report.oracle_exact else "MISMATCH") if oracle else "skipped",
                "exact" if report.incremental_exact else "MISMATCH",
            )
        )
    print(render_table(
        ["strategy", "stages", "makespan", "invariants", "oracle", "incremental"],
        rows,
        title=f"Simulator conformance: {job.model.name} on "
              f"{job.system.cluster.total_gpus} GPUs "
              f"({job.system.cluster.interconnect})",
    ))
    for report in reports:
        for violation in report.violations:
            print(f"  {report.name}: {violation}")
    if args.jobs > 1 and disabled_reason:
        print(f"note: --jobs {args.jobs} ran serially: {disabled_reason}")
    if args.trace:
        write_chrome_trace(reports[-1].timeline, args.trace)
        print(f"Chrome trace of {reports[-1].name!r} written to {args.trace} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    if failures:
        print(f"FAILED: {failures}/{len(reports)} strategies non-conformant")
        return 1
    print(f"All {len(reports)} strategies conformant "
          f"(invariants, oracle, incremental all exact).")
    return 0


def _parse_tenant(value: str, index: int) -> TenantSpec:
    """``--tenant NAME:MODEL:GC[:RATIO]`` parser."""
    parts = value.split(":")
    if len(parts) not in (3, 4):
        raise CLIConfigError(
            f"--tenant wants NAME:MODEL:GC[:RATIO], got {value!r}"
        )
    ratio = None
    if len(parts) == 4:
        try:
            ratio = float(parts[3])
        except ValueError:
            raise CLIConfigError(
                f"--tenant {value!r}: ratio must be a float, "
                f"got {parts[3]!r}"
            ) from None
    try:
        return TenantSpec(
            name=parts[0], model=parts[1], gc=parts[2], ratio=ratio
        )
    except ValueError as error:
        raise CLIConfigError(f"tenant #{index}: {error}") from None


def _build_fleet(args: argparse.Namespace) -> FleetSpec:
    given = sum(
        1 for flag in (args.config, args.mix, args.tenant) if flag
    )
    if given > 1:
        raise CLIConfigError(
            "give exactly one of --config, --mix, or --tenant ... "
            "(they are alternative fleet sources)"
        )
    if args.config:
        return _load_config(load_fleet, args.config, "fleet")
    if args.mix:
        return example_mixes()[args.mix]
    if not args.tenant:
        raise CLIConfigError(
            "a fleet needs --config PATH, --mix NAME, or at least one "
            "--tenant NAME:MODEL:GC[:RATIO]"
        )
    tenants = tuple(
        _parse_tenant(value, index)
        for index, value in enumerate(args.tenant)
    )
    factory = (
        nvlink_100g_cluster if args.testbed == "nvlink" else pcie_25g_cluster
    )
    try:
        cluster = factory(
            num_machines=args.machines, gpus_per_machine=args.gpus
        )
        fleet = FleetSpec(cluster=cluster, tenants=tenants)
        for tenant in fleet.tenants:
            tenant.job(cluster)  # surfaces bad GC params as exit 2
    except ValueError as error:
        raise CLIConfigError(str(error)) from None
    return fleet


def cmd_fleet(args: argparse.Namespace) -> int:
    fleet = _build_fleet(args)
    if args.max_rounds < 1:
        raise CLIConfigError(
            f"--max-rounds must be >= 1, got {args.max_rounds}"
        )
    result = plan_fleet(
        fleet,
        max_rounds=args.max_rounds,
        cvar_alpha=args.cvar_alpha,
        check=args.check,
        jobs=args.jobs,
    )
    rows = []
    for plan in result.tenants:
        tenant = fleet.tenant(plan.name)
        rows.append(
            (
                plan.name,
                plan.model,
                tenant.gc,
                f"{plan.contended_time * 1e3:.2f} ms",
                f"{plan.nominal_time * 1e3:.2f} ms",
                f"{plan.slowdown:.2f}x",
                f"{plan.throughput:,.0f}/s",
                plan.source,
            )
        )
    print(render_table(
        ["tenant", "model", "gc", "contended", "alone", "slowdown",
         "throughput", "source"],
        rows,
        title=f"Fleet plan: {len(result.tenants)} tenants sharing "
              f"{fleet.cluster.total_gpus} GPUs "
              f"({fleet.cluster.interconnect}) — mode {result.mode}",
    ))
    print()
    for plan in result.tenants:
        print(f"{plan.name}: contention {plan.contention.describe()}")
    delta = (
        result.aggregate_throughput / result.selfish_aggregate_throughput
        - 1.0
        if result.selfish_aggregate_throughput
        else 0.0
    )
    print(
        f"aggregate throughput: {result.aggregate_throughput:,.0f} "
        f"samples/s vs selfish {result.selfish_aggregate_throughput:,.0f} "
        f"({delta:+.1%}); worst tenant slowdown {result.worst_slowdown:.2f}x"
    )
    print(result.summary())
    if args.jobs > 1 and result.parallel_disabled_reason:
        print(f"note: --jobs {args.jobs} ran serially: "
              f"{result.parallel_disabled_reason}")
    if args.check:
        print()
        print(
            f"conformance: {result.timelines_checked} contended timelines "
            f"checked, 0 violations"
        )
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    rows = []
    for name in available_models():
        model = get_model(name)
        rows.append(
            (
                name,
                model.num_tensors,
                format_bytes(model.total_bytes),
                f"{model.batch_size} {model.sample_unit}",
                model.dataset,
            )
        )
    print(render_table(["model", "#tensors", "size", "batch", "dataset"], rows))
    return 0


def cmd_options(args: argparse.Namespace) -> int:
    size = search_space_size(args.mode)
    print(f"|C| = {size} compression options (mode={args.mode})")
    return 0


def _training_spec(args: argparse.Namespace) -> TrainingJobSpec:
    try:
        return TrainingJobSpec(
            gc=args.gc,
            ratio=args.ratio if args.ratio is not None else 0.05,
            workers=args.workers,
            steps=args.steps,
            eval_every=args.eval_every,
            checkpoint_every=max(args.checkpoint_every, 1),
            seed=args.seed,
        )
    except (KeyError, ValueError) as error:
        raise CLIConfigError(f"training job: {error}") from None


def _parse_resize(values) -> List[MembershipEvent]:
    events = []
    for value in values or ():
        try:
            step_text, workers_text = value.split(":", 1)
            events.append(
                MembershipEvent(int(step_text), int(workers_text))
            )
        except ValueError as error:
            raise CLIConfigError(
                f"--resize wants STEP:WORKERS, got {value!r} ({error})"
            ) from None
    return events


def cmd_train(args: argparse.Namespace) -> int:
    spec = _training_spec(args)
    try:
        trainer = spec.build_trainer()
    except (KeyError, ValueError) as error:
        raise CLIConfigError(f"training job: {error}") from None
    if args.resume:
        if not args.checkpoint_dir:
            raise CLIConfigError("--resume requires --checkpoint-dir")
        restored = trainer.resume_from(args.checkpoint_dir)
        if restored is not None:
            print(f"resumed at step {trainer.step} from {restored}")
        else:
            print("no checkpoints found, starting fresh")
    remaining = spec.steps - trainer.step
    if remaining <= 0:
        print(f"nothing to do: trainer is at step {trainer.step} "
              f"of {spec.steps}")
        return 0

    events = _parse_resize(args.resize)
    table = None
    if events and args.replan_model:
        params = {}
        if args.ratio is not None:
            params["ratio"] = args.ratio
        job = JobConfig(
            model=get_model(args.replan_model),
            gc=GCInfo(args.gc, params),
            system=SystemInfo(
                cluster=nvlink_100g_cluster(
                    num_machines=max(spec.workers, 1), gpus_per_machine=1
                )
            ),
        )
        print(f"building degradation table for {args.replan_model} "
              f"(one planner run per ensemble member)...")
        table = DegradationTable.build(job)
    checkpoint_every = args.checkpoint_every if args.checkpoint_dir else 0
    if events:
        controller = ElasticController(events, table=table)
        controller.run(
            trainer,
            remaining,
            eval_every=spec.eval_every,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )
        print("membership changes:")
        for record in controller.log:
            print(f"  {record.summary()}")
    else:
        trainer.train(
            remaining,
            eval_every=spec.eval_every,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )
    curve = trainer.curve
    print(f"trained to step {trainer.step}: "
          f"loss {curve.train_loss[-1]:.4f}, "
          f"accuracy {curve.final_accuracy:.1%}")
    if trainer.degraded_tensors:
        print(f"degraded tensors: {sorted(trainer.degraded_tensors)}")
    if args.checkpoint_dir and checkpoint_every:
        checkpoints = list_checkpoints(args.checkpoint_dir)
        if checkpoints:
            print(f"{len(checkpoints)} checkpoints in {args.checkpoint_dir} "
                  f"(newest: step {checkpoint_step(checkpoints[0])})")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import tempfile

    spec = _training_spec(args)
    directory = Path(
        args.dir
        if args.dir
        else tempfile.mkdtemp(prefix="repro-chaos-")
    )
    directory.mkdir(parents=True, exist_ok=True)
    print(f"chaos drill: {spec.gc} x {spec.workers} workers, "
          f"{spec.steps} steps, artifacts in {directory}")
    baseline = run_uninterrupted(spec)
    crashes = sample_crash_steps(spec.steps, args.kills, args.seed)
    print(f"scripted kills at steps {list(crashes)}")
    results = []
    if args.mode in ("both", "inprocess"):
        results.append(
            run_inprocess(spec, crashes, directory / "inprocess", baseline)
        )
    if args.mode in ("both", "sigkill"):
        results.append(
            run_sigkill(spec, crashes, directory / "sigkill", baseline)
        )
    if args.corrupt_newest:
        results.append(
            corruption_drill(spec, directory / "corruption", baseline)
        )
    for result in results:
        print(result.summary())
    report = {
        "spec": json.loads(spec.to_json()),
        "crash_steps": list(crashes),
        "results": [
            {
                "mode": result.mode,
                "crash_steps": list(result.crash_steps),
                "recoveries": [
                    {
                        "crash_step": r.crash_step,
                        "restored_step": r.restored_step,
                        "recomputed_steps": r.recomputed_steps,
                    }
                    for r in result.recoveries
                ],
                "mismatched_keys": result.mismatched_keys,
                "equivalent": result.equivalent,
            }
            for result in results
        ],
        "equivalent": all(result.equivalent for result in results),
    }
    report_path = directory / "report.json"
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"report written to {report_path}")
    if not report["equivalent"]:
        print("CHAOS FAILURE: recovery is not bit-identical")
        return 1
    print(f"all {len(results)} drills recovered bit-identical state")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    chaos = None
    if args.chaos_kill_rate > 0 or args.chaos_slow_rate > 0:
        try:
            chaos = ChaosSchedule(
                seed=args.chaos_seed,
                kill_rate=args.chaos_kill_rate,
                slow_rate=args.chaos_slow_rate,
                slow_seconds=args.chaos_slow_seconds,
                kill_attempts=args.chaos_kill_attempts,
            )
        except ValueError as error:
            raise CLIConfigError(str(error)) from None
    try:
        config = ServerConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_limit=args.queue_limit,
            default_deadline_s=args.deadline if args.deadline > 0 else None,
            jobs=args.jobs,
            check=args.check,
            cache_entries=args.cache_entries,
            retry=RetryPolicy(
                max_retries=args.retries,
                backoff_base=args.retry_backoff,
            ),
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            chaos=chaos,
        )
    except ValueError as error:
        raise CLIConfigError(str(error)) from None
    return serve(config)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Espresso (EuroSys'23) reproduction: near-optimal "
        "gradient-compression usage strategies.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="select a compression strategy")
    _add_job_arguments(plan)
    plan.add_argument("--stats", action="store_true",
                      help="report fast-evaluation-layer counters and "
                           "per-phase selection times")
    plan.add_argument("--check", action="store_true",
                      help="run the simulator conformance invariant checker "
                           "on every timeline the planner materializes")
    plan.add_argument("--fusion", action="store_true",
                      help="search fusion-group (bucket) boundaries jointly "
                           "with per-bucket compression options; the "
                           "no-fusion plan is always in the portfolio")
    plan.add_argument("--save", default=None, metavar="PATH",
                      help="write the selected fusion plan artifact to PATH "
                           "(with --fusion)")
    plan.add_argument("--load", default=None, metavar="PATH",
                      help="pin the fusion-group boundaries from a saved "
                           "plan artifact (implies --fusion; a plan whose "
                           "boundaries no longer match the model trace is "
                           "refused with exit 2)")
    plan.add_argument("--ratios", nargs="?", const="default", default=None,
                      metavar="R1,R2,...",
                      help="search a per-tensor compression-ratio ladder "
                           "jointly with the pipeline decisions; omit the "
                           "value for the default ladder "
                           "(0.001,0.005,0.01,0.05,0.1).  The result is "
                           "never worse than the fixed-ratio plan")
    plan.add_argument("--error-budget", type=float, default=None, metavar="B",
                      help="global compression-error budget in [0,1]: the "
                           "element-weighted average discarded-energy "
                           "fraction the plan may spend")
    plan.add_argument("--robust", action="store_true",
                      help="select by a robust objective over the fault "
                           "perturbation ensemble instead of the nominal "
                           "iteration time")
    plan.add_argument("--objective", default="worst", choices=OBJECTIVES,
                      help="robust objective: worst-case or CVaR makespan "
                           "over the ensemble (with --robust)")
    plan.add_argument("--cvar-alpha", type=float, default=0.25,
                      help="tail fraction for the cvar objective")
    plan.add_argument("--ensemble", default="default", choices=("default",),
                      help="named perturbation ensemble (with --robust)")
    plan.set_defaults(func=cmd_plan)

    faults = sub.add_parser(
        "faults",
        help="sweep a perturbation ensemble and report per-fault-class "
             "sensitivity of the selected strategy vs FP32 and a baseline",
    )
    _add_job_arguments(faults)
    faults.add_argument("--ensemble", default="default", choices=("default",),
                        help="named perturbation ensemble to sweep")
    faults.add_argument("--check", action="store_true",
                        help="run the full invariant battery on every "
                             "faulted timeline")
    faults.set_defaults(func=cmd_faults)

    compare = sub.add_parser("compare", help="compare all systems on a job")
    _add_job_arguments(compare)
    compare.add_argument("--upper-bound", action="store_true",
                         help="also compute the free-compression bound")
    compare.add_argument("--check", action="store_true",
                         help="run the invariant checker on every system's "
                              "selected-strategy timeline")
    compare.set_defaults(func=cmd_compare)

    validate = sub.add_parser(
        "validate",
        help="conformance-check the simulator: invariants + differential "
             "oracle + incremental exactness",
    )
    _add_job_arguments(validate)
    validate.add_argument(
        "--strategy", default="all",
        choices=("all", "espresso", "baseline", "baseline-flat",
                 "allgather-gpu", "allgather-cpu", "alltoall-gpu",
                 "alltoall-cpu", "double-gpu", "double-cpu"),
        help="which strategy to audit (default: the whole uniform suite)")
    validate.add_argument(
        "--skip-oracle", action="store_true",
        help="skip the O(n^2) reference-simulator comparison")
    validate.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a chrome://tracing JSON of the last audited timeline")
    validate.set_defaults(func=cmd_validate)

    fleet = sub.add_parser(
        "fleet",
        help="jointly plan a multi-tenant job mix sharing one cluster's "
             "inter-machine links (fixed point + CVaR fallback; never "
             "worse than selfish planning on aggregate throughput)",
    )
    fleet.add_argument("--config", default=None, metavar="PATH",
                       help="fleet JSON: tenants + cluster "
                            "(see cluster/tenancy.py)")
    fleet.add_argument("--mix", default=None,
                       choices=tuple(sorted(example_mixes())),
                       help="one of the shipped example job mixes")
    fleet.add_argument("--tenant", action="append", default=None,
                       metavar="NAME:MODEL:GC[:RATIO]",
                       help="inline tenant (repeatable); pairs with "
                            "--testbed/--machines/--gpus for the shared "
                            "cluster")
    fleet.add_argument("--testbed", default="nvlink",
                       choices=("nvlink", "pcie"))
    fleet.add_argument("--machines", type=int, default=2)
    fleet.add_argument("--gpus", type=int, default=2,
                       help="GPUs per machine")
    fleet.add_argument("--max-rounds", type=int, default=6,
                       help="fixed-point iterations before the CVaR "
                            "fallback against the observed contention "
                            "envelope")
    fleet.add_argument("--cvar-alpha", type=float, default=0.25,
                       help="tail fraction for the CVaR fallback")
    fleet.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the per-tenant planner "
                            "runs (results are bit-identical for every N)")
    fleet.add_argument("--check", action="store_true",
                       help="run the full invariant battery on every "
                            "tenant's contended timeline")
    fleet.set_defaults(func=cmd_fleet)

    srv = sub.add_parser(
        "serve",
        help="run the resilient planning service: deadlines, retries, "
             "circuit-broken degradation, graceful drain",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0,
                     help="TCP port (0 = pick a free one; printed at start)")
    srv.add_argument("--workers", type=int, default=2,
                     help="concurrent planning slots")
    srv.add_argument("--queue-limit", type=int, default=16,
                     help="bounded admission queue; a full queue fast-fails "
                          "new requests with a one-line diagnostic")
    srv.add_argument("--deadline", type=float, default=30.0,
                     help="default per-request deadline in seconds for "
                          "requests that carry none (0 = unbounded)")
    srv.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="planner fan-out width per request (as in "
                          "'repro plan --jobs')")
    srv.add_argument("--check", action="store_true",
                     help="run the conformance invariant checker on every "
                          "timeline the planner materializes")
    srv.add_argument("--cache-entries", type=int, default=256,
                     help="strategy-cache capacity (LRU)")
    srv.add_argument("--retries", type=int, default=2,
                     help="retries after an evaluator worker death")
    srv.add_argument("--retry-backoff", type=float, default=0.05,
                     help="base of the exponential retry backoff (seconds)")
    srv.add_argument("--breaker-threshold", type=int, default=3,
                     help="consecutive failures/deadline misses that open "
                          "the circuit breaker")
    srv.add_argument("--breaker-cooldown", type=float, default=2.0,
                     help="seconds the breaker stays open before a "
                          "half-open probe")
    srv.add_argument("--chaos-seed", type=int, default=0,
                     help="seed for deterministic fault injection")
    srv.add_argument("--chaos-kill-rate", type=float, default=0.0,
                     help="per-attempt probability of an injected "
                          "evaluator kill")
    srv.add_argument("--chaos-slow-rate", type=float, default=0.0,
                     help="per-attempt probability of an injected slow "
                          "evaluation")
    srv.add_argument("--chaos-slow-seconds", type=float, default=0.25,
                     help="duration of an injected slow evaluation")
    srv.add_argument("--chaos-kill-attempts", type=int, default=1,
                     help="attempts (per request) the kill injection may "
                          "hit; 1 means a retry always heals a kill")
    srv.set_defaults(func=cmd_serve)

    models = sub.add_parser("models", help="list the benchmark models")
    models.set_defaults(func=cmd_models)

    options = sub.add_parser("options", help="report the search-space size")
    options.add_argument("--mode", default="independent",
                         choices=("uniform", "independent", "gpu", "cpu"))
    options.set_defaults(func=cmd_options)

    def add_training_arguments(sub_parser: argparse.ArgumentParser) -> None:
        sub_parser.add_argument("--gc", default="dgc",
                                help="compression algorithm name")
        sub_parser.add_argument("--ratio", type=float, default=None,
                                help="sparsification ratio "
                                     "(for randomk/topk/dgc)")
        sub_parser.add_argument("--workers", type=int, default=2,
                                help="simulated data-parallel workers")
        sub_parser.add_argument("--steps", type=int, default=24,
                                help="training steps (absolute target)")
        sub_parser.add_argument("--eval-every", type=int, default=6,
                                help="evaluate every N steps")
        sub_parser.add_argument("--checkpoint-every", type=int, default=4,
                                help="checkpoint every N steps")
        sub_parser.add_argument("--seed", type=int, default=0,
                                help="model/batch sampling seed")

    train = sub.add_parser(
        "train",
        help="run the data-parallel training engine with checkpointing "
             "and elastic membership",
    )
    add_training_arguments(train)
    train.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="write atomic checkpoints into DIR")
    train.add_argument("--resume", action="store_true",
                       help="restore from the newest valid checkpoint in "
                            "--checkpoint-dir before training (corrupt "
                            "files are skipped; if none validate, exit 2)")
    train.add_argument("--resize", action="append", metavar="STEP:WORKERS",
                       help="membership change at a step boundary "
                            "(repeatable, strictly increasing steps)")
    train.add_argument("--replan-model", default=None,
                       choices=available_models(), metavar="MODEL",
                       help="build a degradation table for MODEL and "
                            "replan the compression strategy at every "
                            "--resize within its time budget")
    train.set_defaults(func=cmd_train)

    chaos = sub.add_parser(
        "chaos",
        help="chaos-replay drill: kill the trainer at random steps, "
             "restart from checkpoints, demand bit-identical recovery",
    )
    add_training_arguments(chaos)
    chaos.add_argument("--kills", type=int, default=2,
                       help="number of scripted crashes")
    chaos.add_argument("--mode", default="both",
                       choices=("both", "inprocess", "sigkill"),
                       help="in-process SimulatedCrash, subprocess "
                            "SIGKILL, or both")
    chaos.add_argument("--corrupt-newest", action="store_true",
                       help="also run the corruption drill: bit-flip the "
                            "newest checkpoint and demand fallback to the "
                            "newest valid one")
    chaos.add_argument("--dir", default=None, metavar="DIR",
                       help="artifact directory for checkpoints and "
                            "report.json (default: a fresh temp dir)")
    chaos.set_defaults(func=cmd_chaos)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CLIConfigError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except CheckpointError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except StalePlanError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except ConformanceError as error:
        print(f"CONFORMANCE FAILURE:\n{error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
