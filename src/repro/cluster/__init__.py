"""Cluster topology: machines, GPUs, and link bandwidths.

The paper's two testbeds (NVLink machines on 100 Gbps Ethernet; PCIe-only
machines on 25 Gbps Ethernet) are provided as presets.
"""

from repro.cluster.topology import (
    ClusterSpec,
    nvlink_100g_cluster,
    pcie_25g_cluster,
    single_gpu,
)

__all__ = [
    "ClusterSpec",
    "nvlink_100g_cluster",
    "pcie_25g_cluster",
    "single_gpu",
]
