"""Cluster topology description.

A :class:`ClusterSpec` captures exactly the "training system information"
input of the paper (Fig. 6): the number of GPU machines, the number of GPUs
per machine, and the network bandwidth of both intra- and inter-machine
communication.  Latency terms feed the alpha part of the alpha-beta
collective cost models in :mod:`repro.comm`.

All bandwidths are bytes/second and all latencies are seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.units import GbpsToBytesPerSec, US
from repro.utils.validation import check_non_negative, check_positive

#: NVLink 2.0 gives each V100 ~1.2 Tbit/s aggregate GPU-GPU bandwidth
#: (paper footnote 1).
_NVLINK_GBPS = 1200.0
#: PCIe 3.0 x16 provides roughly 100 Gbit/s (paper footnote 1) — but a
#: collective among 8 GPUs sharing PCIe switches and the root complex
#: sustains only a fraction of a single link's line rate.  Table 1's
#: observation that inter-machine-only GC barely helps the PCIe testbed
#: (the intra-machine network stays a bottleneck, §5.2.3) pins the
#: effective intra bandwidth well below 12.5 GB/s.
_PCIE3_X16_GBPS = 100.0
_PCIE_COLLECTIVE_EFFICIENCY = 0.35
#: Fraction of Ethernet line rate achievable by TCP/IP gradient traffic.
#: The paper's testbeds use TCP over 100/25 Gbps Ethernet; sustained
#: goodput of TCP tensor transfers is well below line rate, and the
#: paper's reported FP32 scaling factors (Table 1) are only reproducible
#: with an effective NIC bandwidth around two thirds of line rate.
_TCP_EFFICIENCY = 0.68


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous GPU cluster for synchronous data-parallel training.

    Attributes:
        num_machines: number of GPU machines (N in the paper).
        gpus_per_machine: GPUs per machine (k in the paper).
        intra_bw: per-GPU intra-machine interconnect bandwidth, bytes/s.
        inter_bw: per-machine NIC bandwidth, bytes/s.
        intra_latency: per-communication-round latency inside a machine, s.
        inter_latency: per-communication-round latency across machines, s.
        interconnect: human-readable name of the intra-machine fabric.
    """

    num_machines: int
    gpus_per_machine: int
    intra_bw: float
    inter_bw: float
    intra_latency: float = 3 * US
    inter_latency: float = 15 * US
    interconnect: str = "custom"

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ValueError(f"num_machines must be >= 1, got {self.num_machines}")
        if self.gpus_per_machine < 1:
            raise ValueError(
                f"gpus_per_machine must be >= 1, got {self.gpus_per_machine}"
            )
        check_positive("intra_bw", self.intra_bw)
        check_positive("inter_bw", self.inter_bw)
        check_non_negative("intra_latency", self.intra_latency)
        check_non_negative("inter_latency", self.inter_latency)

    @property
    def total_gpus(self) -> int:
        """Total number of GPUs in the cluster (n in the paper)."""
        return self.num_machines * self.gpus_per_machine

    @property
    def is_distributed(self) -> bool:
        """True when gradient synchronization is needed at all."""
        return self.total_gpus > 1

    @property
    def has_intra_phase(self) -> bool:
        """True when hierarchical communication has intra-machine phases."""
        return self.gpus_per_machine > 1

    @property
    def has_inter_phase(self) -> bool:
        """True when there is inter-machine communication."""
        return self.num_machines > 1

    def with_machines(self, num_machines: int) -> "ClusterSpec":
        """Return a copy scaled to ``num_machines`` machines."""
        return replace(self, num_machines=num_machines)


def nvlink_100g_cluster(
    num_machines: int = 8, gpus_per_machine: int = 8
) -> ClusterSpec:
    """The paper's first testbed: NVLink machines, 100 Gbps Ethernet."""
    return ClusterSpec(
        num_machines=num_machines,
        gpus_per_machine=gpus_per_machine,
        intra_bw=GbpsToBytesPerSec(_NVLINK_GBPS),
        inter_bw=GbpsToBytesPerSec(100.0) * _TCP_EFFICIENCY,
        interconnect="nvlink",
    )


def pcie_25g_cluster(num_machines: int = 8, gpus_per_machine: int = 8) -> ClusterSpec:
    """The paper's second testbed: PCIe-only machines, 25 Gbps Ethernet."""
    return ClusterSpec(
        num_machines=num_machines,
        gpus_per_machine=gpus_per_machine,
        intra_bw=GbpsToBytesPerSec(_PCIE3_X16_GBPS) * _PCIE_COLLECTIVE_EFFICIENCY,
        inter_bw=GbpsToBytesPerSec(25.0) * _TCP_EFFICIENCY,
        interconnect="pcie",
    )


def single_gpu() -> ClusterSpec:
    """A one-GPU "cluster", used to measure the single-device throughput T."""
    return ClusterSpec(
        num_machines=1,
        gpus_per_machine=1,
        intra_bw=GbpsToBytesPerSec(_NVLINK_GBPS),
        inter_bw=GbpsToBytesPerSec(100.0),
        interconnect="none",
    )
