"""Multi-tenant fleets: co-scheduled jobs on one shared cluster.

The planner prices every job as if it owned the network, but the
ROADMAP's heavy-traffic scenario is N concurrent training jobs sharing
the same inter-machine links — each job's gradient traffic is every
other job's fault injection.  This module supplies the vocabulary and
the projection:

* :class:`TenantSpec` / :class:`FleetSpec` — a named job mix on one
  :class:`~repro.cluster.topology.ClusterSpec`, with the same JSON
  round-trip + unknown-key-rejection discipline as the single-job
  config files (a typo'd fleet config is an exit-2 one-liner, never a
  silently defaulted plan input).
* :func:`link_load` — one tenant's offered load, read off its simulated
  timeline: the inter-machine link's busy fraction times the effective
  link bandwidth is exactly the bytes/second the job puts on the wire.
* :func:`contention_models` — the projection of everyone else's offered
  load onto each tenant, expressed as ordinary
  :class:`~repro.sim.faults.DegradedLink` / CPUContention perturbations.

Design rule (inherited from :mod:`repro.sim.faults`): **contention
perturbs inputs, never the engine.**  A tenant under fleet contention is
a perfectly ordinary job with a scaled-down NIC, so its timeline is
produced by the unmodified simulator and passes the unmodified
invariant battery.  The projection is deterministic and order-free:
cross-traffic is summed with :func:`math.fsum` over tenants sorted by
name, so any permutation of the job list yields bit-identical
bandwidth scales — the fleet fixed-point iteration in
:mod:`repro.core.fleet` depends on that for reproducibility.

Mass conservation: for tenant ``i`` with unclamped bandwidth scale
``s_i``, the bandwidth taken away, ``(1 - s_i) * inter_bw``, equals the
sum of the other tenants' offered bytes/second exactly (one fsum, one
division, one multiplication of rounding).  The hypothesis property
tests in ``tests/cluster/test_tenancy.py`` pin this down.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from repro.cluster.topology import (
    ClusterSpec,
    nvlink_100g_cluster,
    pcie_25g_cluster,
)
from repro.config import (
    GCInfo,
    JobConfig,
    SystemInfo,
    _check_known_keys,
    cluster_from_dict,
    cluster_to_dict,
)
from repro.models import available_models, get_model
from repro.models.base import ModelProfile
from repro.sim.engine import Timeline
from repro.sim.faults import (
    CPUContention,
    DegradedLink,
    Fault,
    FaultModel,
    INTER_SCOPE,
)
from repro.sim.metrics import iteration_time as timeline_iteration_time
from repro.sim.stages import CPU as CPU_RESOURCE
from repro.sim.stages import INTER as INTER_RESOURCE

#: Floor on the bandwidth share a tenant keeps no matter how loaded the
#: link is.  ``DegradedLink`` requires a scale in (0, 1], and a real
#: transport never starves a flow to zero; 5% is the conventional
#: minimum fair share.
MIN_BANDWIDTH_SHARE = 0.05

_TENANT_KEYS = frozenset(("name", "model", "gc", "ratio", "gc_params"))
_FLEET_KEYS = frozenset(
    ("tenants", "cluster", "testbed", "machines", "gpus")
)


@dataclass(frozen=True)
class TenantSpec:
    """One co-scheduled training job: a zoo model plus its compressor."""

    name: str
    model: str
    gc: str = "dgc"
    ratio: Optional[float] = None
    gc_params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("tenant name must be a non-empty string")
        if self.model not in available_models():
            raise ValueError(
                f"tenant {self.name!r}: unknown model {self.model!r}; "
                f"available: {', '.join(available_models())}"
            )
        if self.ratio is not None and not 0.0 < self.ratio <= 1.0:
            raise ValueError(
                f"tenant {self.name!r}: ratio must be in (0, 1], "
                f"got {self.ratio}"
            )

    def gc_info(self) -> GCInfo:
        params = dict(self.gc_params)
        if self.ratio is not None:
            params["ratio"] = float(self.ratio)
        return GCInfo(self.gc, params)

    def job(self, cluster: ClusterSpec) -> JobConfig:
        """The ordinary :class:`JobConfig` this tenant runs on ``cluster``."""
        job = JobConfig(
            model=get_model(self.model),
            gc=self.gc_info(),
            system=SystemInfo(cluster=cluster),
        )
        # Surface a typo'd GC parameter at fleet-load time, not from
        # deep inside the joint planner.
        job.build_compressor()
        return job

    def to_dict(self) -> dict:
        data = {"name": self.name, "model": self.model, "gc": self.gc}
        if self.ratio is not None:
            data["ratio"] = self.ratio
        if self.gc_params:
            data["gc_params"] = dict(self.gc_params)
        return data

    @classmethod
    def from_dict(cls, data: dict, index: int = 0) -> "TenantSpec":
        _check_known_keys(data, _TENANT_KEYS, f"fleet tenant #{index}")
        if "name" not in data or "model" not in data:
            raise ValueError(
                f"fleet tenant #{index} needs 'name' and 'model' keys"
            )
        return cls(
            name=str(data["name"]),
            model=str(data["model"]),
            gc=str(data.get("gc", "dgc")),
            ratio=(
                float(data["ratio"]) if data.get("ratio") is not None else None
            ),
            gc_params=dict(data.get("gc_params", {})),
        )


@dataclass(frozen=True)
class FleetSpec:
    """N tenants co-scheduled on one shared cluster."""

    cluster: ClusterSpec
    tenants: Tuple[TenantSpec, ...]

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("a fleet needs at least one tenant")
        names = [tenant.name for tenant in self.tenants]
        duplicates = sorted(
            {name for name in names if names.count(name) > 1}
        )
        if duplicates:
            raise ValueError(
                f"tenant names must be unique, duplicated: "
                f"{', '.join(map(repr, duplicates))}"
            )

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(tenant.name for tenant in self.tenants)

    def tenant(self, name: str) -> TenantSpec:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(
            f"no tenant {name!r}; fleet has: {', '.join(self.names)}"
        )

    def jobs(self) -> Dict[str, JobConfig]:
        """Per-tenant unperturbed jobs on the shared cluster."""
        return {
            tenant.name: tenant.job(self.cluster) for tenant in self.tenants
        }

    def with_tenants(self, tenants: Sequence[TenantSpec]) -> "FleetSpec":
        return FleetSpec(cluster=self.cluster, tenants=tuple(tenants))

    def to_dict(self) -> dict:
        return {
            "cluster": cluster_to_dict(self.cluster),
            "tenants": [tenant.to_dict() for tenant in self.tenants],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        _check_known_keys(data, _FLEET_KEYS, "fleet config")
        if "cluster" in data and "testbed" in data:
            raise ValueError(
                "fleet config: give either 'cluster' or 'testbed', not both"
            )
        if "cluster" in data:
            cluster = cluster_from_dict(data["cluster"])
        else:
            testbed = data.get("testbed", "nvlink")
            if testbed not in ("nvlink", "pcie"):
                raise ValueError(
                    f"fleet config: unknown testbed {testbed!r}; "
                    f"expected 'nvlink' or 'pcie'"
                )
            factory = (
                nvlink_100g_cluster if testbed == "nvlink" else pcie_25g_cluster
            )
            cluster = factory(
                num_machines=int(data.get("machines", 8)),
                gpus_per_machine=int(data.get("gpus", 8)),
            )
        tenants_data = data.get("tenants")
        if not isinstance(tenants_data, list) or not tenants_data:
            raise ValueError(
                "fleet config: 'tenants' must be a non-empty list"
            )
        return cls(
            cluster=cluster,
            tenants=tuple(
                TenantSpec.from_dict(entry, index)
                for index, entry in enumerate(tenants_data)
            ),
        )


def save_fleet(fleet: FleetSpec, path: Path) -> None:
    """Write a fleet config file."""
    Path(path).write_text(json.dumps(fleet.to_dict(), indent=2))


def load_fleet(path: Path) -> FleetSpec:
    """Read a fleet config file (unknown keys rejected)."""
    return FleetSpec.from_dict(json.loads(Path(path).read_text()))


# -- contention projection -------------------------------------------------


@dataclass(frozen=True)
class LinkLoad:
    """One tenant's offered load, read off its simulated timeline.

    ``inter_rate`` is the job's actual wire traffic in bytes/second:
    the inter-machine link is a capacity-1 resource, so its busy
    fraction of the iteration times the *effective* bandwidth of the
    cluster the timeline was simulated against (possibly already
    contention-scaled) is exactly the data it moves per unit time.
    ``cpu_utilization`` is the analogous busy fraction of the host
    compression CPU.
    """

    tenant: str
    inter_utilization: float
    inter_rate: float
    cpu_utilization: float


def link_load(tenant: str, job: JobConfig, timeline: Timeline) -> LinkLoad:
    """Project one tenant's timeline onto the shared resources.

    ``job`` must be the job the timeline was simulated from (perturbed
    or not) — its cluster carries the effective bandwidth that converts
    the busy fraction into bytes/second.
    """
    iteration = timeline_iteration_time(timeline, job.model)
    if iteration <= 0.0:
        raise ValueError(f"tenant {tenant!r}: non-positive iteration time")
    inter_busy = math.fsum(
        stage.duration
        for stage in timeline.stages
        if stage.resource == INTER_RESOURCE
    )
    cpu_busy = math.fsum(
        stage.duration
        for stage in timeline.stages
        if stage.resource == CPU_RESOURCE
    )
    utilization = min(1.0, inter_busy / iteration)
    return LinkLoad(
        tenant=tenant,
        inter_utilization=utilization,
        inter_rate=utilization * job.system.cluster.inter_bw,
        cpu_utilization=min(1.0, cpu_busy / iteration),
    )


def contention_models(
    loads: Sequence[LinkLoad],
    cluster: ClusterSpec,
    min_share: float = MIN_BANDWIDTH_SHARE,
) -> Dict[str, FaultModel]:
    """Each tenant's view of everyone else's traffic, as a fault model.

    For tenant ``i`` the other tenants' offered bytes/second are summed
    (``fsum`` over name-sorted loads — deterministic for any input
    ordering) and subtracted from the shared link's nominal bandwidth:
    ``scale_i = 1 - cross_rate / inter_bw``, clamped to
    ``[min_share, 1]``.  CPU contention steals whole workers: the floor
    of the other tenants' summed CPU busy fractions.

    The result reuses :mod:`repro.sim.faults` unchanged — a contended
    tenant is an ordinary perturbed job, checkable by the unmodified
    invariant battery.
    """
    if not 0.0 < min_share <= 1.0:
        raise ValueError(f"min_share must be in (0, 1], got {min_share}")
    ordered = sorted(loads, key=lambda load: load.tenant)
    names = [load.tenant for load in ordered]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tenants in loads: {names}")
    models: Dict[str, FaultModel] = {}
    for load in ordered:
        cross_rate = math.fsum(
            other.inter_rate for other in ordered if other.tenant != load.tenant
        )
        scale = 1.0 - cross_rate / cluster.inter_bw
        scale = min(1.0, max(min_share, scale))
        stolen = int(
            math.fsum(
                other.cpu_utilization
                for other in ordered
                if other.tenant != load.tenant
            )
        )
        faults: Tuple[Fault, ...] = ()
        if scale < 1.0:
            faults += (DegradedLink(INTER_SCOPE, bandwidth_scale=scale),)
        if stolen >= 1:
            faults += (CPUContention(slowdown=1.0, stolen_workers=stolen),)
        models[load.tenant] = FaultModel(
            name=f"fleet:{load.tenant}", faults=faults
        )
    return models


__all__ = [
    "FleetSpec",
    "LinkLoad",
    "MIN_BANDWIDTH_SHARE",
    "TenantSpec",
    "contention_models",
    "link_load",
    "load_fleet",
    "save_fleet",
]
