"""repro — a reproduction of Espresso (EuroSys 2023).

"Hi-Speed DNN Training with Espresso: Unleashing the Full Potential of
Gradient Compression with Near-Optimal Usage Strategies" (Wang, Lin, Zhu,
Ng).

Public API tour:

* :class:`repro.Espresso` — the planner: give it a
  :class:`repro.JobConfig` (model profile + GC algorithm + cluster) and
  it selects a near-optimal per-tensor compression strategy.
* :mod:`repro.models` — the six paper benchmark models as profiles.
* :mod:`repro.compression` — real GC algorithms with error feedback.
* :mod:`repro.baselines` — FP32/BytePS, HiPress, HiTopKComm,
  BytePS-Compress, brute force, Upper Bound.
* :mod:`repro.sim` — the deterministic DDL timeline simulator.
* :mod:`repro.training` — numpy data-parallel SGD for convergence tests.
* :mod:`repro.eval` — sweeps/ablations regenerating the paper's figures.
"""

from repro.cluster import (
    ClusterSpec,
    nvlink_100g_cluster,
    pcie_25g_cluster,
    single_gpu,
)
from repro.config import (
    GCInfo,
    JobConfig,
    SystemInfo,
    load_cluster,
    load_gc,
    load_job,
    load_model,
    save_cluster,
    save_gc,
    save_model,
)
from repro.core import (
    CompressionOption,
    CompressionStrategy,
    Espresso,
    EspressoResult,
    StrategyEvaluator,
    enumerate_options,
)
from repro.models import available_models, get_model

__version__ = "1.0.0"

__all__ = [
    "Espresso",
    "EspressoResult",
    "JobConfig",
    "GCInfo",
    "SystemInfo",
    "ClusterSpec",
    "nvlink_100g_cluster",
    "pcie_25g_cluster",
    "single_gpu",
    "CompressionOption",
    "CompressionStrategy",
    "StrategyEvaluator",
    "enumerate_options",
    "available_models",
    "get_model",
    "load_model",
    "save_model",
    "load_gc",
    "save_gc",
    "load_cluster",
    "save_cluster",
    "load_job",
    "__version__",
]
