"""The three Espresso input configurations (paper Fig. 6).

Espresso takes (1) DNN model information — tensor sizes and computation
times, (2) GC information — the algorithm and its compression ratio, and
(3) training system information — machines, GPUs, bandwidths.  This module
bundles them into a :class:`JobConfig` and provides JSON round-tripping so
configs can live in files exactly as the paper describes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.cluster.topology import ClusterSpec
from repro.compression.base import Compressor
from repro.compression.registry import create_compressor
from repro.models.base import ModelProfile, TensorProfile
from repro.profiling.device import DeviceProfile, v100_gpu, xeon_cpu


def _check_known_keys(data: dict, allowed: frozenset, what: str) -> None:
    """Reject config entries with keys this schema does not define.

    A typo'd optional key (``"inter_latencey"``) would otherwise be
    silently dropped and the default used — the worst failure mode for
    a planning input, because the plan looks plausible and is priced
    against the wrong cluster.  The one-line message matches the CLI's
    exit-2 diagnostic style.
    """
    if not isinstance(data, dict):
        raise ValueError(f"{what} must be a JSON object, got {type(data).__name__}")
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"{what} has unknown key(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


_MODEL_KEYS = frozenset(
    ("name", "forward_time", "batch_size", "sample_unit", "dataset", "tensors")
)
_TENSOR_KEYS = frozenset(("name", "num_elements", "compute_time"))
_CLUSTER_KEYS = frozenset(
    (
        "num_machines",
        "gpus_per_machine",
        "intra_bw",
        "inter_bw",
        "intra_latency",
        "inter_latency",
        "interconnect",
    )
)
_GC_KEYS = frozenset(("algorithm", "params"))


@dataclass(frozen=True)
class GCInfo:
    """The GC configuration: algorithm name + constructor parameters."""

    algorithm: str
    params: Dict[str, object] = field(default_factory=dict)

    def build(self) -> Compressor:
        """Instantiate the configured compressor."""
        return create_compressor(self.algorithm, **self.params)


@dataclass(frozen=True)
class SystemInfo:
    """The training-system configuration: topology + compression devices."""

    cluster: ClusterSpec
    gpu: DeviceProfile = field(default_factory=v100_gpu)
    cpu: DeviceProfile = field(default_factory=xeon_cpu)


@dataclass(frozen=True)
class JobConfig:
    """One DDL training job: model x GC algorithm x system."""

    model: ModelProfile
    gc: GCInfo
    system: SystemInfo

    def build_compressor(self) -> Compressor:
        return self.gc.build()


def model_to_dict(model: ModelProfile) -> dict:
    """Serialize a model profile to plain JSON-compatible data."""
    return {
        "name": model.name,
        "forward_time": model.forward_time,
        "batch_size": model.batch_size,
        "sample_unit": model.sample_unit,
        "dataset": model.dataset,
        "tensors": [
            {
                "name": t.name,
                "num_elements": t.num_elements,
                "compute_time": t.compute_time,
            }
            for t in model.tensors
        ],
    }


def model_from_dict(data: dict) -> ModelProfile:
    """Deserialize :func:`model_to_dict` output (unknown keys rejected)."""
    _check_known_keys(data, _MODEL_KEYS, "model config")
    for index, tensor in enumerate(data.get("tensors", ())):
        _check_known_keys(tensor, _TENSOR_KEYS, f"model config tensor #{index}")
    return ModelProfile(
        name=data["name"],
        tensors=tuple(
            TensorProfile(
                name=t["name"],
                num_elements=int(t["num_elements"]),
                compute_time=float(t["compute_time"]),
            )
            for t in data["tensors"]
        ),
        forward_time=float(data["forward_time"]),
        batch_size=int(data["batch_size"]),
        sample_unit=data.get("sample_unit", "images"),
        dataset=data.get("dataset", "synthetic"),
    )


def save_model(model: ModelProfile, path: Path) -> None:
    """Write a model-information config file."""
    Path(path).write_text(json.dumps(model_to_dict(model), indent=2))


def load_model(path: Path) -> ModelProfile:
    """Read a model-information config file."""
    return model_from_dict(json.loads(Path(path).read_text()))


def cluster_to_dict(cluster: ClusterSpec) -> dict:
    return {
        "num_machines": cluster.num_machines,
        "gpus_per_machine": cluster.gpus_per_machine,
        "intra_bw": cluster.intra_bw,
        "inter_bw": cluster.inter_bw,
        "intra_latency": cluster.intra_latency,
        "inter_latency": cluster.inter_latency,
        "interconnect": cluster.interconnect,
    }


def cluster_from_dict(data: dict) -> ClusterSpec:
    _check_known_keys(data, _CLUSTER_KEYS, "system config")
    return ClusterSpec(
        num_machines=int(data["num_machines"]),
        gpus_per_machine=int(data["gpus_per_machine"]),
        intra_bw=float(data["intra_bw"]),
        inter_bw=float(data["inter_bw"]),
        intra_latency=float(data.get("intra_latency", 3e-6)),
        inter_latency=float(data.get("inter_latency", 15e-6)),
        interconnect=data.get("interconnect", "custom"),
    )


def save_cluster(cluster: ClusterSpec, path: Path) -> None:
    """Write a training-system config file."""
    Path(path).write_text(json.dumps(cluster_to_dict(cluster), indent=2))


def load_cluster(path: Path) -> ClusterSpec:
    """Read a training-system config file."""
    return cluster_from_dict(json.loads(Path(path).read_text()))


def gc_to_dict(gc: GCInfo) -> dict:
    return {"algorithm": gc.algorithm, "params": dict(gc.params)}


def gc_from_dict(data: dict) -> GCInfo:
    _check_known_keys(data, _GC_KEYS, "GC config")
    return GCInfo(algorithm=data["algorithm"], params=dict(data.get("params", {})))


def save_gc(gc: GCInfo, path: Path) -> None:
    """Write a GC-information config file."""
    Path(path).write_text(json.dumps(gc_to_dict(gc), indent=2))


def load_gc(path: Path) -> GCInfo:
    """Read a GC-information config file."""
    return gc_from_dict(json.loads(Path(path).read_text()))


def load_job(
    model_path: Path,
    gc_path: Path,
    system_path: Path,
    gpu: Optional[DeviceProfile] = None,
    cpu: Optional[DeviceProfile] = None,
) -> JobConfig:
    """Assemble a :class:`JobConfig` from the three config files."""
    return JobConfig(
        model=load_model(model_path),
        gc=load_gc(gc_path),
        system=SystemInfo(
            cluster=load_cluster(system_path),
            gpu=gpu if gpu is not None else v100_gpu(),
            cpu=cpu if cpu is not None else xeon_cpu(),
        ),
    )
