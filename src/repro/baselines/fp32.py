"""BytePS-style FP32 baseline: highly optimized DDL without compression."""

from __future__ import annotations

from repro.baselines.base import BaselineSystem
from repro.core.strategy import CompressionStrategy, StrategyEvaluator


class FP32(BaselineSystem):
    """No compression; hierarchical reduce-scatter / allreduce / allgather.

    This is the paper's "FP32" / BytePS reference point: wait-free
    backpropagation with hierarchical communication, no GC.
    """

    name = "FP32"

    def select_strategy(self, evaluator: StrategyEvaluator) -> CompressionStrategy:
        return evaluator.baseline()
