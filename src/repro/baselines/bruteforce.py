"""Brute-force strategy search: the |C|^N enumeration of §4.4.1.

Feasible only for jobs with a handful of tensors and a reduced option
set; for anything larger, :func:`estimate_search_seconds` extrapolates
the running time from the measured per-evaluation cost — how the paper's
Table 5 arrives at its "> 24h" entries.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.options import CompressionOption, no_compression_option
from repro.core.parallel import (
    EvaluatorPool,
    WorkerPoolError,
    _bruteforce_range_task,
)
from repro.core.strategy import CompressionStrategy, StrategyEvaluator


@dataclass(frozen=True)
class BruteForceResult:
    """The optimum over the enumerated strategy space."""

    strategy: CompressionStrategy
    iteration_time: float
    evaluations: int
    seconds: float


def _bruteforce_parallel(
    evaluator: StrategyEvaluator,
    options: List[CompressionOption],
    n: int,
    total: int,
    jobs: int,
    oversubscribe: bool,
) -> Optional[Tuple[float, int, int]]:
    """Fan the enumeration out as contiguous index ranges.

    Returns ``(best_time, best_enumeration_index, evaluations)`` or
    ``None`` when the pool is unavailable.  The serial scan keeps the
    first strictly-smaller time, which equals the minimum under the
    total order ``(time, enumeration index)`` — so merging the
    per-range winners by that order reproduces the serial pick exactly,
    no matter how the ranges were cut.
    """
    pool = EvaluatorPool(
        jobs,
        job=evaluator.job,
        fast=evaluator.fast,
        check=evaluator.check,
        vocab=options,
        oversubscribe=oversubscribe,
    )
    try:
        if not pool.active:
            return None
        step = -(-total // pool.jobs)  # ceil division
        tasks = [
            (start, min(start + step, total), n)
            for start in range(0, total, step)
        ]
        try:
            results = pool.run(_bruteforce_range_task, tasks)
        except WorkerPoolError:
            return None
    finally:
        pool.close()
    best_time, best_index = min(
        ((r[0], r[1]) for r in results), key=lambda entry: (entry[0], entry[1])
    )
    evaluations = sum(r[2] for r in results)
    return best_time, best_index, evaluations


def brute_force_search(
    evaluator: StrategyEvaluator,
    candidates: Sequence[CompressionOption],
    max_evaluations: int = 2_000_000,
    jobs: int = 1,
    oversubscribe: bool = False,
) -> BruteForceResult:
    """Exhaustively evaluate every per-tensor option combination.

    ``candidates`` should include the no-compression option if it is to
    be considered (it is appended automatically when absent).  With
    ``jobs > 1`` the enumeration is split into contiguous ranges across
    a worker pool; the result is identical to the serial scan (the
    winner is the minimum under ``(time, enumeration index)``).
    """
    options = list(candidates)
    if not any(not option.compresses for option in options):
        options.append(no_compression_option())
    n = evaluator.model.num_tensors
    total = len(options) ** n
    if total > max_evaluations:
        raise ValueError(
            f"brute force needs {total} evaluations "
            f"(> max_evaluations={max_evaluations}); "
            "use estimate_search_seconds() instead"
        )
    start = time.perf_counter()
    parallel_result = None
    if jobs > 1:
        parallel_result = _bruteforce_parallel(
            evaluator, options, n, total, jobs, oversubscribe
        )
    if parallel_result is not None:
        best_time, best_index, evaluations = parallel_result
        # Decode the winning enumeration index in itertools.product
        # order (last tensor varies fastest).
        combo = []
        remainder = best_index
        for position in range(n):
            weight = len(options) ** (n - 1 - position)
            combo.append(options[remainder // weight])
            remainder %= weight
        best = (best_time, CompressionStrategy(options=tuple(combo)))
        evaluator.evaluations += evaluations
    else:
        # Walk the enumeration in blocks sharing everything but the
        # last tensor (product order: last varies fastest) and price
        # each block through the evaluator's batch layer.  ``bound`` is
        # the running best: the scan only replaces on *strictly*
        # smaller, so candidates a sound lower bound proves >= best are
        # pruned without changing the winner or its tie-breaking.
        best: Optional[Tuple[float, CompressionStrategy]] = None
        evaluations = 0
        for prefix in itertools.product(options, repeat=n - 1):
            base = CompressionStrategy(options=(*prefix, options[0]))
            times = evaluator.price_options(
                base,
                n - 1,
                options,
                bound=best[0] if best is not None else None,
            )
            evaluations += len(options)
            for option, iteration in zip(options, times):
                if iteration is None:
                    continue
                if best is None or iteration < best[0]:
                    best = (
                        iteration,
                        CompressionStrategy(options=(*prefix, option)),
                    )
    seconds = time.perf_counter() - start
    return BruteForceResult(
        strategy=best[1],
        iteration_time=best[0],
        evaluations=evaluations,
        seconds=seconds,
    )


def measure_evaluation_seconds(
    evaluator: StrategyEvaluator, samples: int = 20
) -> float:
    """Average seconds of one from-scratch F(S) evaluation on this job.

    Uses the uncached path on purpose: the brute-force extrapolation
    prices an enumeration of all-distinct strategies, which the memo
    cache of the fast evaluation layer could never serve.
    """
    strategy = evaluator.baseline()
    start = time.perf_counter()
    for _ in range(samples):
        evaluator.iteration_time_uncached(strategy)
    return (time.perf_counter() - start) / samples


def estimate_search_seconds(
    num_tensors: int, num_options: int, seconds_per_evaluation: float
) -> float:
    """Extrapolated wall-clock of the full |C|^N brute force.

    Computed in log space; returns ``inf`` when the estimate exceeds
    float range (it does for every real model — that is the point).
    """
    import math

    if num_tensors < 1 or num_options < 1 or seconds_per_evaluation <= 0:
        raise ValueError("need positive tensors, options, and per-eval time")
    log10_total = num_tensors * math.log10(num_options) + math.log10(
        seconds_per_evaluation
    )
    if log10_total > 300:
        return math.inf
    return 10.0 ** log10_total


@dataclass(frozen=True)
class BruteForceFusionResult:
    """The optimum over partitions x per-group option combinations."""

    fused: "FusedStrategy"
    iteration_time: float
    evaluations: int
    partitions: int
    seconds: float


def brute_force_fusion_search(
    job: "JobConfig",
    candidates: Sequence[CompressionOption],
    max_evaluations: int = 2_000_000,
) -> BruteForceFusionResult:
    """The exact joint optimum over bucket boundaries *and* options.

    Enumerates all ``2^(n-1)`` contiguous partitions of the tensor
    trace (each interior boundary is one bit) and runs
    :func:`brute_force_search` on each partition's fused job, so the
    search space is ``sum over partitions of |C|^groups``.  Feasible
    only for toy models; the fusion equivalence tests use it to verify
    :class:`~repro.core.fusion.FusionPlanner` heuristics against ground
    truth.  The winner is the minimum under the same deterministic
    total order the planner uses: ``(iteration_time, num_groups,
    boundaries)``.
    """
    from repro.core.fusion import fused_job
    from repro.core.strategy import FusedStrategy, FusionPlan

    options = list(candidates)
    if not any(not option.compresses for option in options):
        options.append(no_compression_option())
    n = job.model.num_tensors
    total = sum(
        len(options) ** (1 + bin(mask).count("1"))
        for mask in range(2 ** (n - 1))
    )
    if total > max_evaluations:
        raise ValueError(
            f"fusion brute force needs {total} evaluations "
            f"(> max_evaluations={max_evaluations})"
        )
    start = time.perf_counter()
    best: Optional[Tuple[float, int, Tuple[int, ...], FusedStrategy]] = None
    evaluations = partitions = 0
    for mask in range(2 ** (n - 1)):
        boundaries = (0,) + tuple(
            index for index in range(1, n) if mask >> (index - 1) & 1
        )
        plan = FusionPlan(num_tensors=n, boundaries=boundaries)
        evaluator = StrategyEvaluator(fused_job(job, plan))
        result = brute_force_search(evaluator, options, max_evaluations)
        partitions += 1
        evaluations += result.evaluations
        key = (result.iteration_time, plan.num_groups, plan.boundaries)
        if best is None or key < (best[0], best[1], best[2]):
            best = (
                result.iteration_time,
                plan.num_groups,
                plan.boundaries,
                FusedStrategy(plan=plan, options=result.strategy.options),
            )
    seconds = time.perf_counter() - start
    return BruteForceFusionResult(
        fused=best[3],
        iteration_time=best[0],
        evaluations=evaluations,
        partitions=partitions,
        seconds=seconds,
    )


def brute_force_offload_search(
    evaluator: StrategyEvaluator,
    strategy: CompressionStrategy,
    indices: Sequence[int],
    max_evaluations: int = 2_000_000,
) -> BruteForceResult:
    """The 2^|T_gpu| CPU-offloading brute force of §4.4.3.

    Tries every subset of ``indices`` (the GPU-compressed tensors) moved
    to the CPU; used by the tests that verify Theorem 1 and by Table 6.
    """
    from repro.core.options import Device

    total = 2 ** len(indices)
    if total > max_evaluations:
        raise ValueError(
            f"offload brute force needs {total} evaluations "
            f"(> max_evaluations={max_evaluations})"
        )
    start = time.perf_counter()
    best: Optional[Tuple[float, CompressionStrategy]] = None
    evaluations = 0
    for mask in range(total):
        trial = strategy
        for bit, index in enumerate(indices):
            if mask >> bit & 1:
                trial = trial.replace(index, trial[index].with_device(Device.CPU))
        iteration = evaluator.iteration_time(trial)
        evaluations += 1
        if best is None or iteration < best[0]:
            best = (iteration, trial)
    seconds = time.perf_counter() - start
    return BruteForceResult(
        strategy=best[1],
        iteration_time=best[0],
        evaluations=evaluations,
        seconds=seconds,
    )
