"""Brute-force strategy search: the |C|^N enumeration of §4.4.1.

Feasible only for jobs with a handful of tensors and a reduced option
set; for anything larger, :func:`estimate_search_seconds` extrapolates
the running time from the measured per-evaluation cost — how the paper's
Table 5 arrives at its "> 24h" entries.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.options import CompressionOption, no_compression_option
from repro.core.strategy import CompressionStrategy, StrategyEvaluator


@dataclass(frozen=True)
class BruteForceResult:
    """The optimum over the enumerated strategy space."""

    strategy: CompressionStrategy
    iteration_time: float
    evaluations: int
    seconds: float


def brute_force_search(
    evaluator: StrategyEvaluator,
    candidates: Sequence[CompressionOption],
    max_evaluations: int = 2_000_000,
) -> BruteForceResult:
    """Exhaustively evaluate every per-tensor option combination.

    ``candidates`` should include the no-compression option if it is to
    be considered (it is appended automatically when absent).
    """
    options = list(candidates)
    if not any(not option.compresses for option in options):
        options.append(no_compression_option())
    n = evaluator.model.num_tensors
    total = len(options) ** n
    if total > max_evaluations:
        raise ValueError(
            f"brute force needs {total} evaluations "
            f"(> max_evaluations={max_evaluations}); "
            "use estimate_search_seconds() instead"
        )
    start = time.perf_counter()
    best: Optional[Tuple[float, CompressionStrategy]] = None
    evaluations = 0
    for combo in itertools.product(options, repeat=n):
        strategy = CompressionStrategy(options=combo)
        iteration = evaluator.iteration_time(strategy)
        evaluations += 1
        if best is None or iteration < best[0]:
            best = (iteration, strategy)
    seconds = time.perf_counter() - start
    return BruteForceResult(
        strategy=best[1],
        iteration_time=best[0],
        evaluations=evaluations,
        seconds=seconds,
    )


def measure_evaluation_seconds(
    evaluator: StrategyEvaluator, samples: int = 20
) -> float:
    """Average seconds of one from-scratch F(S) evaluation on this job.

    Uses the uncached path on purpose: the brute-force extrapolation
    prices an enumeration of all-distinct strategies, which the memo
    cache of the fast evaluation layer could never serve.
    """
    strategy = evaluator.baseline()
    start = time.perf_counter()
    for _ in range(samples):
        evaluator.iteration_time_uncached(strategy)
    return (time.perf_counter() - start) / samples


def estimate_search_seconds(
    num_tensors: int, num_options: int, seconds_per_evaluation: float
) -> float:
    """Extrapolated wall-clock of the full |C|^N brute force.

    Computed in log space; returns ``inf`` when the estimate exceeds
    float range (it does for every real model — that is the point).
    """
    import math

    if num_tensors < 1 or num_options < 1 or seconds_per_evaluation <= 0:
        raise ValueError("need positive tensors, options, and per-eval time")
    log10_total = num_tensors * math.log10(num_options) + math.log10(
        seconds_per_evaluation
    )
    if log10_total > 300:
        return math.inf
    return 10.0 ** log10_total


def brute_force_offload_search(
    evaluator: StrategyEvaluator,
    strategy: CompressionStrategy,
    indices: Sequence[int],
    max_evaluations: int = 2_000_000,
) -> BruteForceResult:
    """The 2^|T_gpu| CPU-offloading brute force of §4.4.3.

    Tries every subset of ``indices`` (the GPU-compressed tensors) moved
    to the CPU; used by the tests that verify Theorem 1 and by Table 6.
    """
    from repro.core.options import Device

    total = 2 ** len(indices)
    if total > max_evaluations:
        raise ValueError(
            f"offload brute force needs {total} evaluations "
            f"(> max_evaluations={max_evaluations})"
        )
    start = time.perf_counter()
    best: Optional[Tuple[float, CompressionStrategy]] = None
    evaluations = 0
    for mask in range(total):
        trial = strategy
        for bit, index in enumerate(indices):
            if mask >> bit & 1:
                trial = trial.replace(index, trial[index].with_device(Device.CPU))
        iteration = evaluator.iteration_time(trial)
        evaluations += 1
        if best is None or iteration < best[0]:
            best = (iteration, trial)
    seconds = time.perf_counter() - start
    return BruteForceResult(
        strategy=best[1],
        iteration_time=best[0],
        evaluations=evaluations,
        seconds=seconds,
    )
