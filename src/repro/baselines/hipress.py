"""HiPress baseline (Bai et al., SOSP'21).

HiPress compresses with **GPUs only**, for **inter-machine communication
only**, and decides whether to compress a tensor with its *selective
compression* mechanism: compare the wall-clock communication time saved
against the wall-clock compression time incurred, tensor by tensor —
i.e. using tau_comm / tau_comp, not the overheads o_comm / o_comp, and
ignoring interactions among tensors (§6, and the Reason #1 discussion of
§3.1).
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem, inter_allgather_option
from repro.core.options import Device
from repro.core.strategy import CompressionStrategy, StrategyEvaluator


class HiPress(BaselineSystem):
    """GPU compression, inter-machine only, wall-clock selective compression."""

    name = "HiPress"

    def select_strategy(self, evaluator: StrategyEvaluator) -> CompressionStrategy:
        compiler = evaluator.compiler
        baseline = evaluator.baseline()
        option = inter_allgather_option(Device.GPU)
        strategy = baseline
        for index, tensor in enumerate(evaluator.model.tensors):
            plain = sum(
                s.duration
                for s in compiler.stages(baseline[index], tensor.num_elements)
            )
            compressed_stages = compiler.stages(option, tensor.num_elements)
            comm = sum(s.duration for s in compressed_stages if s.kind == "comm")
            comp = sum(s.duration for s in compressed_stages if s.kind != "comm")
            # Selective compression: compress when the wall-clock saving
            # in communication exceeds the wall-clock compression cost.
            if plain - comm > comp:
                strategy = strategy.replace(index, option)
        return strategy
