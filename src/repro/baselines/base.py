"""Shared scaffolding for the compression-enabled DDL baselines (§5.1).

Each baseline is a *strategy selector*: it maps a training job to a
:class:`~repro.core.strategy.CompressionStrategy` using its own (narrower)
search space, and is then evaluated on exactly the same timeline
simulator as Espresso — the apples-to-apples comparison of Figs. 12/13.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple

from repro.config import JobConfig
from repro.core.presets import (
    double_compression_option,
    inter_allgather_option,
    inter_alltoall_option,
)
from repro.core.strategy import CompressionStrategy, StrategyEvaluator


@dataclass(frozen=True)
class BaselineResult:
    """A baseline's selected strategy and its simulated performance."""

    name: str
    strategy: CompressionStrategy
    iteration_time: float
    throughput: float
    scaling_factor: float


class BaselineSystem(abc.ABC):
    """A DDL system with a fixed compression policy."""

    #: System name as it appears in the paper's figures.
    name: str = "abstract"

    @abc.abstractmethod
    def select_strategy(self, evaluator: StrategyEvaluator) -> CompressionStrategy:
        """Choose this system's compression strategy for the job."""

    def run(self, job: JobConfig) -> BaselineResult:
        """Select and evaluate the strategy on the shared simulator."""
        evaluator = StrategyEvaluator(job)
        strategy = self.select_strategy(evaluator)
        iteration = evaluator.iteration_time(strategy)
        return BaselineResult(
            name=self.name,
            strategy=strategy,
            iteration_time=iteration,
            throughput=evaluator.throughput(strategy),
            scaling_factor=evaluator.scaling_factor(strategy),
        )
