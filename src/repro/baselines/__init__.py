"""Baseline DDL systems (§5.1): FP32/BytePS, HiPress, HiTopKComm,
BytePS-Compress, brute force, plus Espresso and Upper Bound wrapped in
the same interface."""

from repro.baselines.base import (
    BaselineResult,
    BaselineSystem,
    double_compression_option,
    inter_allgather_option,
    inter_alltoall_option,
)
from repro.baselines.bruteforce import (
    BruteForceResult,
    brute_force_offload_search,
    brute_force_search,
    estimate_search_seconds,
    measure_evaluation_seconds,
)
from repro.baselines.bytepscompress import BytePSCompress
from repro.baselines.espresso_system import EspressoSystem, UpperBound
from repro.baselines.fp32 import FP32
from repro.baselines.hipress import HiPress
from repro.baselines.hitopkcomm import HiTopKComm

#: The five systems of the end-to-end figures, in plot order.
ALL_SYSTEMS = (FP32, BytePSCompress, HiTopKComm, HiPress, EspressoSystem)

__all__ = [
    "BaselineSystem",
    "BaselineResult",
    "FP32",
    "HiPress",
    "HiTopKComm",
    "BytePSCompress",
    "EspressoSystem",
    "UpperBound",
    "ALL_SYSTEMS",
    "inter_allgather_option",
    "inter_alltoall_option",
    "double_compression_option",
    "brute_force_search",
    "brute_force_offload_search",
    "BruteForceResult",
    "estimate_search_seconds",
    "measure_evaluation_seconds",
]
