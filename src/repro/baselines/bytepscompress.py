"""BytePS-Compress baseline (Zhong et al. 2021).

BytePS's compression support uses **CPUs only** (the gradients already
traverse host memory in its parameter-server architecture), compresses
for inter-machine communication only, and applies GC to every tensor,
ignoring interactions among tensors (§6).
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem, inter_allgather_option
from repro.core.options import Device
from repro.core.strategy import CompressionStrategy, StrategyEvaluator


class BytePSCompress(BaselineSystem):
    """CPU compression of every tensor; indivisible Allgather scheme."""

    name = "BytePS-Compress"

    def select_strategy(self, evaluator: StrategyEvaluator) -> CompressionStrategy:
        option = inter_allgather_option(Device.CPU)
        return CompressionStrategy(
            options=(option,) * evaluator.model.num_tensors
        )
