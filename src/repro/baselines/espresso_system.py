"""Espresso wrapped in the baseline-system interface, plus Upper Bound.

Having Espresso and the Upper Bound behave like just another
:class:`~repro.baselines.base.BaselineSystem` keeps the end-to-end
benchmark harness (Figs. 12/13/14) symmetric across all five schemes.
"""

from __future__ import annotations

from repro.baselines.base import BaselineResult, BaselineSystem
from repro.config import JobConfig
from repro.core.bounds import upper_bound_iteration_time
from repro.core.espresso import Espresso
from repro.core.strategy import CompressionStrategy, StrategyEvaluator


class EspressoSystem(BaselineSystem):
    """Espresso's near-optimal strategy selection (Algorithms 1 + 2)."""

    name = "Espresso"

    def select_strategy(self, evaluator: StrategyEvaluator) -> CompressionStrategy:
        raise NotImplementedError("EspressoSystem overrides run() directly")

    def run(self, job: JobConfig) -> BaselineResult:
        result = Espresso(job).select_strategy()
        model = job.model
        return BaselineResult(
            name=self.name,
            strategy=result.strategy,
            iteration_time=result.iteration_time,
            throughput=model.batch_size
            * job.system.cluster.total_gpus
            / result.iteration_time,
            scaling_factor=model.iteration_compute_time / result.iteration_time,
        )


class UpperBound(BaselineSystem):
    """The free-compression bound of §5.1 (no strategy of its own)."""

    name = "Upper Bound"

    def select_strategy(self, evaluator: StrategyEvaluator) -> CompressionStrategy:
        raise NotImplementedError("UpperBound overrides run() directly")

    def run(self, job: JobConfig) -> BaselineResult:
        iteration = upper_bound_iteration_time(job)
        model = job.model
        return BaselineResult(
            name=self.name,
            strategy=CompressionStrategy(
                options=(StrategyEvaluator(job).baseline()[0],)
                * model.num_tensors
            ),
            iteration_time=iteration,
            throughput=model.batch_size
            * job.system.cluster.total_gpus
            / iteration,
            scaling_factor=model.iteration_compute_time / iteration,
        )
