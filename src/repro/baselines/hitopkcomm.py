"""HiTopKComm baseline (Shi et al., MLSys'21).

HiTopKComm designs a dedicated communication scheme for sparsified
gradients but compresses **all** tensors with GPUs for inter-machine
communication — the paper's example of prohibitive over-compression
(§6; Fig. 13(c) shows it losing badly on compute-bound models).
"""

from __future__ import annotations

from repro.baselines.base import BaselineSystem, inter_alltoall_option
from repro.core.options import Device
from repro.core.strategy import CompressionStrategy, StrategyEvaluator


class HiTopKComm(BaselineSystem):
    """GPU compression of every tensor; divisible Alltoall-based scheme."""

    name = "HiTopKComm"

    def select_strategy(self, evaluator: StrategyEvaluator) -> CompressionStrategy:
        option = inter_alltoall_option(Device.GPU)
        return CompressionStrategy(
            options=(option,) * evaluator.model.num_tensors
        )
