"""Alpha-beta cost models for the collective routines of Table 2.

Conventions
-----------
* ``p`` participants; ``p == 1`` means no communication (zero cost).
* ``nbytes`` is the **per-participant input payload**:
  - Allreduce / Reduce-scatter / Reduce / Alltoall: each node starts with
    an ``nbytes`` buffer covering the whole tensor (or tensor shard).
  - Allgather / Broadcast / Gather: each node contributes (or the root
    holds) an ``nbytes`` buffer; Allgather output is ``p * nbytes``.
* ``alpha`` (latency) is charged once per communication round, ``beta``
  is ``1 / bandwidth`` seconds per byte.

Models (ring for the shifting collectives, binomial trees for the rooted
ones — the same shapes NCCL/MPICH realize and that Thakur et al. analyze):

===============  ==========================================================
Allreduce        ``2(p-1) alpha + 2 (p-1)/p * n beta``      (ring)
Reduce-scatter   ``(p-1) alpha + (p-1)/p * n beta``         (ring)
Allgather        ``(p-1) alpha + (p-1) * n beta``           (ring, n = shard)
Alltoall         ``(p-1) alpha + (p-1)/p * n beta``         (pairwise)
Reduce           ``ceil(log2 p) (alpha + n beta)``          (binomial tree)
Broadcast        ``ceil(log2 p) (alpha + n beta)``          (binomial tree)
Gather           ``(p-1) alpha + (p-1) * n beta``           (root link serial)
===============  ==========================================================
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.utils.validation import check_finite, check_non_negative, check_positive


class Routine(enum.Enum):
    """The collective routines appearing in the paper's Table 2."""

    ALLREDUCE = "allreduce"
    REDUCE_SCATTER = "reduce_scatter"
    ALLGATHER = "allgather"
    ALLTOALL = "alltoall"
    REDUCE = "reduce"
    BROADCAST = "broadcast"
    GATHER = "gather"


@dataclass(frozen=True)
class LinkParams:
    """Cost-model parameters of one communication phase.

    Attributes:
        participants: number of communicating nodes (GPUs or machines).
        bandwidth: bytes/second of each node's link.
        latency: seconds charged per communication round (alpha).
    """

    participants: int
    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.participants < 1:
            raise ValueError(
                f"participants must be >= 1, got {self.participants}"
            )
        check_finite("bandwidth", self.bandwidth)
        check_positive("bandwidth", self.bandwidth)
        check_finite("latency", self.latency)
        check_non_negative("latency", self.latency)


def routine_time(routine: Routine, nbytes: float, link: LinkParams) -> float:
    """Wall-clock seconds for one collective ``routine`` on ``link``.

    ``nbytes`` is the per-participant input payload (see module docstring
    for per-routine semantics).  Returns 0 for single-participant links.
    """
    check_finite("nbytes", nbytes)
    check_non_negative("nbytes", nbytes)
    p = link.participants
    # Degenerate cases return exactly 0.0 *before* any per-routine
    # arithmetic: a single participant has nobody to talk to (the ring
    # terms would charge 0*alpha and the binomial trees ceil(log2 1) = 0
    # rounds — both happen to agree today, but only by accident of the
    # current formulas), and an empty payload costs neither latency nor
    # bandwidth.  An explicit early-return keeps every present and
    # future routine exact at the boundary.
    if p == 1 or nbytes == 0:
        return 0.0
    alpha = link.latency
    beta = 1.0 / link.bandwidth
    if routine is Routine.ALLREDUCE:
        return 2 * (p - 1) * alpha + 2 * (p - 1) / p * nbytes * beta
    if routine is Routine.REDUCE_SCATTER:
        return (p - 1) * alpha + (p - 1) / p * nbytes * beta
    if routine is Routine.ALLGATHER:
        return (p - 1) * alpha + (p - 1) * nbytes * beta
    if routine is Routine.ALLTOALL:
        return (p - 1) * alpha + (p - 1) / p * nbytes * beta
    if routine in (Routine.REDUCE, Routine.BROADCAST):
        rounds = math.ceil(math.log2(p))
        return rounds * (alpha + nbytes * beta)
    if routine is Routine.GATHER:
        return (p - 1) * alpha + (p - 1) * nbytes * beta
    raise ValueError(f"unknown routine: {routine!r}")
