"""Collective-communication cost models (alpha-beta, Thakur et al.).

The paper's communication time models "follow the model analysis in the
literature [48, 65]" (§4.3); this package provides exactly those models
for every routine in the paper's Table 2, parameterized by participants,
bandwidth, and per-round latency.
"""

from repro.comm.routines import (
    LinkParams,
    Routine,
    routine_time,
)

__all__ = ["Routine", "LinkParams", "routine_time"]
