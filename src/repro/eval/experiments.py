"""End-to-end experiment helpers shared by the benchmark harness.

These functions regenerate the paper's evaluation series: throughput
sweeps over GPU counts (Figs. 12/13), scaling-factor tables (Table 1),
and performance-difference-from-Upper-Bound distributions (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import ALL_SYSTEMS, BaselineResult, BaselineSystem, UpperBound
from repro.cluster.topology import ClusterSpec
from repro.config import GCInfo, JobConfig, SystemInfo
from repro.models.base import ModelProfile


def make_job(
    model: ModelProfile, gc: GCInfo, cluster: ClusterSpec
) -> JobConfig:
    """Convenience constructor with default device profiles."""
    return JobConfig(model=model, gc=gc, system=SystemInfo(cluster=cluster))


def run_systems(
    job: JobConfig,
    systems: Sequence[type] = ALL_SYSTEMS,
) -> Dict[str, BaselineResult]:
    """Evaluate each system class on ``job``; returns {name: result}."""
    results: Dict[str, BaselineResult] = {}
    for system_cls in systems:
        system: BaselineSystem = system_cls()
        results[system.name] = system.run(job)
    return results


@dataclass(frozen=True)
class SweepPoint:
    """One (GPU count, system) measurement of a throughput sweep."""

    num_gpus: int
    system: str
    throughput: float
    scaling_factor: float


def gpu_count_sweep(
    model: ModelProfile,
    gc: GCInfo,
    cluster_factory: Callable[[int], ClusterSpec],
    machine_counts: Sequence[int] = (1, 2, 4, 8),
    systems: Sequence[type] = ALL_SYSTEMS,
) -> List[SweepPoint]:
    """The Figs. 12/13 sweep: throughput of every system from 8 to 64 GPUs.

    ``cluster_factory(num_machines)`` builds the testbed at each scale.
    """
    points: List[SweepPoint] = []
    for machines in machine_counts:
        cluster = cluster_factory(machines)
        job = make_job(model, gc, cluster)
        for name, result in run_systems(job, systems).items():
            points.append(
                SweepPoint(
                    num_gpus=cluster.total_gpus,
                    system=name,
                    throughput=result.throughput,
                    scaling_factor=result.scaling_factor,
                )
            )
    return points


def upper_bound_gaps(
    job: JobConfig, systems: Sequence[type] = ALL_SYSTEMS
) -> Dict[str, float]:
    """Percent performance difference of each system from Upper Bound.

    The Fig. 14 metric: ``(UB - throughput) / UB * 100``, clamped at 0
    (a heuristic bound can occasionally be grazed).
    """
    bound = UpperBound().run(job).throughput
    gaps: Dict[str, float] = {}
    for name, result in run_systems(job, systems).items():
        gaps[name] = max(0.0, (bound - result.throughput) / bound * 100.0)
    return gaps


def cdf(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative fractions)."""
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise ValueError("cdf of no values")
    fractions = np.arange(1, data.size + 1) / data.size
    return data, fractions
