"""Experiment harness: sweeps, Upper-Bound gaps, CDFs, and the Fig. 15
dimension ablations."""

from repro.eval.ablation import (
    DIMENSION_MECHANISMS,
    all_compression,
    alltoall_alltoall,
    cpu_only,
    dimension_ablation,
    full_espresso,
    gpu_only,
    inter_allgather,
    inter_alltoall,
    myopic_compression,
    restricted_espresso,
)
from repro.eval.experiments import (
    SweepPoint,
    cdf,
    gpu_count_sweep,
    make_job,
    run_systems,
    upper_bound_gaps,
)

__all__ = [
    "make_job",
    "run_systems",
    "gpu_count_sweep",
    "SweepPoint",
    "upper_bound_gaps",
    "cdf",
    "dimension_ablation",
    "DIMENSION_MECHANISMS",
    "restricted_espresso",
    "all_compression",
    "myopic_compression",
    "gpu_only",
    "cpu_only",
    "inter_allgather",
    "inter_alltoall",
    "alltoall_alltoall",
    "full_espresso",
]
