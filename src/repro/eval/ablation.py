"""The Fig. 15 ablation: crippling each of the four decision dimensions.

Every restricted mechanism is a strategy selector over a *narrowed*
search space or with a decision rule that ignores tensor interactions;
all are evaluated on the same simulator, so the comparison isolates the
value of each dimension exactly as §5.3 does.

Dimension 1 (compress or not):
    * ``all_compression``    — compresses every tensor.
    * ``myopic_compression`` — decides per tensor from standalone
      wall-clock times, ignoring interactions (Reason #1 of §3.1).
Dimension 2 (GPU or CPU):
    * ``gpu_only`` / ``cpu_only`` — single-device candidate sets,
      no offloading.
Dimension 3 (communication schemes):
    * ``inter_allgather`` / ``inter_alltoall`` — one fixed scheme.
Dimension 4 (compression choice / placement):
    * ``alltoall_alltoall`` — compress for both intra- and inter-machine
      communication with the fixed double-compression pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.base import (
    double_compression_option,
    inter_allgather_option,
    inter_alltoall_option,
)
from repro.config import JobConfig
from repro.core.algorithm import gpu_compression_decision
from repro.core.espresso import Espresso
from repro.core.options import CompressionOption, Device
from repro.core.strategy import CompressionStrategy, StrategyEvaluator
from repro.core.tree import enumerate_options


def _compressed_options(mode: str) -> List[CompressionOption]:
    return [
        option
        for option in enumerate_options(mode=mode, include_rooted=False)
        if option.compresses
    ]


def restricted_espresso(
    job: JobConfig,
    candidates: Sequence[CompressionOption],
    offload: bool = False,
) -> float:
    """Espresso's Algorithm 1 (optionally + 2) over a restricted space.

    Returns the achieved scaling factor.
    """
    evaluator = StrategyEvaluator(job)
    result = gpu_compression_decision(evaluator, candidates=list(candidates))
    strategy, iteration = result.strategy, result.iteration_time
    if offload:
        from repro.core.offload import cpu_offload_decision

        offload_result = cpu_offload_decision(evaluator, strategy)
        strategy, iteration = offload_result.strategy, offload_result.iteration_time
    return job.model.iteration_compute_time / iteration


def all_compression(job: JobConfig) -> float:
    """Cripple Dimension 1: every tensor must be compressed.

    Each tensor still gets its best option (greedy, interaction-aware),
    but "no compression" is not available.
    """
    evaluator = StrategyEvaluator(job)
    candidates = _compressed_options("uniform")
    strategy = evaluator.baseline()
    # Initialize all tensors to a sane compressed option, then refine.
    initial = inter_allgather_option(Device.GPU)
    for index in range(len(strategy)):
        strategy = strategy.replace(index, initial)
    best_time = evaluator.iteration_time(strategy)
    for index in range(len(strategy)):
        best_option = strategy[index]
        for option in candidates:
            trial = strategy.replace(index, option)
            trial_time = evaluator.iteration_time(trial)
            if trial_time < best_time:
                best_time, best_option = trial_time, option
        strategy = strategy.replace(index, best_option)
    return job.model.iteration_compute_time / best_time


def myopic_compression(job: JobConfig) -> float:
    """Cripple Dimension 1: wall-clock, interaction-blind decisions.

    A tensor is compressed with the standalone-cheapest option whenever
    that option's wall-clock (comm + compression) beats its uncompressed
    comm time — the tau-based reasoning §3.1 warns about.
    """
    evaluator = StrategyEvaluator(job)
    compiler = evaluator.compiler
    candidates = _compressed_options("uniform")
    strategy = evaluator.baseline()
    for index, tensor in enumerate(evaluator.model.tensors):
        plain = sum(
            s.duration for s in compiler.stages(strategy[index], tensor.num_elements)
        )
        best_cost, best_option = plain, None
        for option in candidates:
            cost = sum(
                s.duration for s in compiler.stages(option, tensor.num_elements)
            )
            if cost < best_cost:
                best_cost, best_option = cost, option
        if best_option is not None:
            strategy = strategy.replace(index, best_option)
    iteration = evaluator.iteration_time(strategy)
    return job.model.iteration_compute_time / iteration


def gpu_only(job: JobConfig) -> float:
    """Cripple Dimension 2: GPUs only, no offloading."""
    return restricted_espresso(job, _compressed_options("gpu"), offload=False)


def cpu_only(job: JobConfig) -> float:
    """Cripple Dimension 2: CPUs only."""
    return restricted_espresso(job, _compressed_options("cpu"), offload=False)


def inter_allgather(job: JobConfig) -> float:
    """Cripple Dimension 3: only the indivisible Allgather scheme."""
    candidates = [inter_allgather_option(d) for d in (Device.GPU, Device.CPU)]
    return restricted_espresso(job, candidates, offload=True)


def inter_alltoall(job: JobConfig) -> float:
    """Cripple Dimension 3: only the divisible Alltoall/Allgather scheme."""
    candidates = [inter_alltoall_option(d) for d in (Device.GPU, Device.CPU)]
    return restricted_espresso(job, candidates, offload=True)


def alltoall_alltoall(job: JobConfig) -> float:
    """Cripple Dimension 4: fixed intra+inter double compression."""
    candidates = [double_compression_option(d) for d in (Device.GPU, Device.CPU)]
    return restricted_espresso(job, candidates, offload=True)


def full_espresso(job: JobConfig) -> float:
    """The un-crippled reference point."""
    result = Espresso(job).select_strategy()
    return job.model.iteration_compute_time / result.iteration_time


#: The Fig. 15 panels: dimension -> {mechanism name: callable}.
DIMENSION_MECHANISMS = {
    1: {"All compression": all_compression, "Myopic compression": myopic_compression},
    2: {"GPU compression": gpu_only, "CPU compression": cpu_only},
    3: {"Inter Allgather": inter_allgather, "Inter Alltoall": inter_alltoall},
    4: {"Inter Alltoall": inter_alltoall, "Alltoall+Alltoall": alltoall_alltoall},
}


def dimension_ablation(job: JobConfig, dimension: int) -> Dict[str, float]:
    """Scaling factors of the crippled mechanisms plus full Espresso."""
    if dimension not in DIMENSION_MECHANISMS:
        raise ValueError(f"dimension must be 1-4, got {dimension}")
    results = {
        name: mechanism(job)
        for name, mechanism in DIMENSION_MECHANISMS[dimension].items()
    }
    results["Espresso"] = full_espresso(job)
    return results
