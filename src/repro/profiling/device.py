"""Compute-device profiles for compression cost modelling.

The paper profiles each GC algorithm's compress/decompress time on GPUs
and CPUs (§4.3).  Without that hardware, we model a kernel's time as

    launch_overhead + transfer_time + work_factor * nbytes / throughput

where ``work_factor`` comes from the algorithm
(:attr:`repro.compression.base.Compressor.work_factor`), and the device
contributes the constant launch overhead — the term responsible for the
paper's Fig. 10 observation that GPU compression pays off only for large
tensors — plus a streaming throughput.  CPU devices additionally pay a
host-device transfer over PCIe and expose multiple parallel workers
(BytePS-style CPU compression spreads tensors across cores).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GBPS, US
from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class DeviceProfile:
    """Cost-model parameters of one compression device.

    Attributes:
        name: human-readable device name.
        kind: ``"gpu"`` or ``"cpu"``.
        launch_overhead: constant seconds per kernel/op invocation.
        throughput: bytes/second of one streaming pass over the data.
        transfer_bw: host-device transfer bandwidth in bytes/s, or ``None``
            when the data is already resident (GPU compression).
        parallel_workers: how many tensors the device can compress
            concurrently (CPU pools > 1; the GPU's compute stream is 1).
    """

    name: str
    kind: str
    launch_overhead: float
    throughput: float
    transfer_bw: float = None
    parallel_workers: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ValueError(f"kind must be 'gpu' or 'cpu', got {self.kind!r}")
        check_non_negative("launch_overhead", self.launch_overhead)
        check_positive("throughput", self.throughput)
        if self.transfer_bw is not None:
            check_positive("transfer_bw", self.transfer_bw)
        if self.parallel_workers < 1:
            raise ValueError(
                f"parallel_workers must be >= 1, got {self.parallel_workers}"
            )

    @property
    def is_gpu(self) -> bool:
        return self.kind == "gpu"


def v100_gpu() -> DeviceProfile:
    """A V100-class GPU running compression kernels on its compute stream."""
    return DeviceProfile(
        name="v100",
        kind="gpu",
        launch_overhead=30 * US,
        throughput=30 * GBPS,
        transfer_bw=None,
        parallel_workers=1,
    )


def xeon_cpu(parallel_workers: int = 4) -> DeviceProfile:
    """A 2x Xeon 8260 host compressing tensors on CPU cores.

    Tensors reach the CPU over PCIe (the transfer term); a couple of
    tensors can be compressed concurrently on different cores.  The
    throughput is deliberately modest: the host's cores are shared by
    all of the machine's GPU workers (the paper's testbed runs 8 GPU
    processes against 48 cores), which is why the paper finds CPU
    compression of large models (UGATIT, Table 1's LSTM) actively
    harmful while small/cheap quantizers still overlap fine.
    """
    return DeviceProfile(
        name="xeon-8260",
        kind="cpu",
        launch_overhead=20 * US,
        throughput=3 * GBPS,
        transfer_bw=12 * GBPS,
        parallel_workers=parallel_workers,
    )
