"""Execution-trace collection for the empirical computation-time model.

The paper (§4.3) collects traces of 100 no-GC iterations, records each
tensor's backprop start/end, and averages.  Our "execution" is the model
profile itself plus realistic run-to-run jitter (the paper reports < 5%
normalized standard deviation); :func:`collect_traces` produces the raw
per-iteration measurements and :func:`average_traces` rebuilds the
averaged :class:`~repro.models.base.ModelProfile` Espresso consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.models.base import ModelProfile, TensorProfile


@dataclass(frozen=True)
class TraceRecord:
    """One tensor's backprop computation interval in one iteration."""

    tensor_name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def collect_traces(
    model: ModelProfile,
    iterations: int = 100,
    jitter: float = 0.03,
    seed: int = 0,
) -> List[List[TraceRecord]]:
    """Simulate ``iterations`` backprop passes with multiplicative jitter.

    Returns one list of :class:`TraceRecord` per iteration, in backprop
    completion order, mimicking what a framework profiler would emit.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    rng = np.random.default_rng(seed)
    traces = []
    for _ in range(iterations):
        clock = 0.0
        records = []
        for tensor in model.tensors:
            noisy = tensor.compute_time * float(
                np.clip(1.0 + rng.normal(0.0, jitter), 0.5, 1.5)
            )
            records.append(
                TraceRecord(tensor_name=tensor.name, start=clock, end=clock + noisy)
            )
            clock += noisy
        traces.append(records)
    return traces


def average_traces(
    model: ModelProfile, traces: List[List[TraceRecord]]
) -> Tuple[ModelProfile, float]:
    """Average traced durations into a new profile.

    Returns the rebuilt profile and the worst per-tensor normalized
    standard deviation (the paper reports < 5% for its measurements).
    """
    if not traces:
        raise ValueError("no traces to average")
    durations = np.array(
        [[record.duration for record in iteration] for iteration in traces]
    )
    if durations.shape[1] != model.num_tensors:
        raise ValueError(
            f"traces have {durations.shape[1]} tensors, model has {model.num_tensors}"
        )
    means = durations.mean(axis=0)
    with np.errstate(invalid="ignore"):
        normalized_std = float(np.max(durations.std(axis=0) / np.maximum(means, 1e-12)))
    tensors = tuple(
        TensorProfile(
            name=tensor.name,
            num_elements=tensor.num_elements,
            compute_time=float(mean),
        )
        for tensor, mean in zip(model.tensors, means)
    )
    averaged = ModelProfile(
        name=model.name,
        tensors=tensors,
        forward_time=model.forward_time,
        batch_size=model.batch_size,
        sample_unit=model.sample_unit,
        dataset=model.dataset,
    )
    return averaged, normalized_std
