"""Empirical time models (§4.3): device profiles, compression time models,
real-kernel measurement, and execution-trace collection/averaging."""

from repro.profiling.device import DeviceProfile, v100_gpu, xeon_cpu
from repro.profiling.timing import (
    CompressionTimeModel,
    LinearModel,
    fit_linear,
    measure_compressor,
    time_model,
)
from repro.profiling.tracer import TraceRecord, average_traces, collect_traces

__all__ = [
    "DeviceProfile",
    "v100_gpu",
    "xeon_cpu",
    "CompressionTimeModel",
    "LinearModel",
    "fit_linear",
    "measure_compressor",
    "time_model",
    "TraceRecord",
    "collect_traces",
    "average_traces",
]
