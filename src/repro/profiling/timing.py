"""Compression time models built on device profiles.

Also provides :func:`measure_compressor`, which does what the paper's
profiler does (§4.3): run compress/decompress on a range of tensor sizes
100 times and average — here against the real numpy kernels — and
:func:`fit_linear`, the ``a + b * nbytes`` fit used to extrapolate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.compression.base import Compressor
from repro.profiling.device import DeviceProfile
from repro.utils.validation import check_non_negative

#: Decompression is a scatter/unpack over the output — cheaper than the
#: selection/quantization pass of compression.
_DECOMPRESS_WORK_FRACTION = 0.5
#: Aggregating decompressed pieces is a single dense add pass.
_AGGREGATE_WORK_FRACTION = 0.25


@dataclass(frozen=True)
class CompressionTimeModel:
    """Deterministic compress/decompress time on one device.

    The paper requires GC algorithms to have deterministic compression
    time given a tensor size (§4.3); this model is that function.
    """

    device: DeviceProfile
    work_factor: float

    def __post_init__(self) -> None:
        check_non_negative("work_factor", self.work_factor)

    def _transfer_time(self, nbytes: int) -> float:
        if self.device.transfer_bw is None:
            return 0.0
        return nbytes / self.device.transfer_bw

    def compress_time(self, nbytes: int) -> float:
        """Seconds to compress an ``nbytes`` FP32 tensor on this device."""
        check_non_negative("nbytes", nbytes)
        if self.work_factor == 0.0:
            return 0.0
        return (
            self.device.launch_overhead
            + self._transfer_time(nbytes)
            + self.work_factor * nbytes / self.device.throughput
        )

    def decompress_time(self, nbytes: int) -> float:
        """Seconds to decompress back to an ``nbytes`` FP32 tensor.

        On CPU devices the dense result must travel back to the GPU, so
        the transfer term is charged on the output.
        """
        check_non_negative("nbytes", nbytes)
        if self.work_factor == 0.0:
            return 0.0
        return (
            self.device.launch_overhead
            + self._transfer_time(nbytes)
            + self.work_factor
            * _DECOMPRESS_WORK_FRACTION
            * nbytes
            / self.device.throughput
        )

    def aggregate_time(self, nbytes: int) -> float:
        """Seconds to sum ``nbytes`` of decompressed pieces on this device.

        Aggregation is a plain dense add over data already resident on
        the device (it always directly follows a decompression there),
        so no transfer term applies.  A zero ``work_factor`` (the
        Upper Bound's free compression) zeroes this too: aggregation of
        received pieces only exists because of compression.
        """
        check_non_negative("nbytes", nbytes)
        if self.work_factor == 0.0:
            return 0.0
        return (
            self.device.launch_overhead
            + _AGGREGATE_WORK_FRACTION * nbytes / self.device.throughput
        )


def time_model(device: DeviceProfile, compressor: Compressor) -> CompressionTimeModel:
    """The time model of ``compressor`` on ``device``."""
    return CompressionTimeModel(device=device, work_factor=compressor.work_factor)


@dataclass(frozen=True)
class LinearModel:
    """A fitted ``a + b * nbytes`` time model."""

    intercept: float
    slope: float

    def __call__(self, nbytes: float) -> float:
        return self.intercept + self.slope * nbytes


def fit_linear(sizes: Sequence[float], times: Sequence[float]) -> LinearModel:
    """Least-squares fit of ``times ~ a + b * sizes``."""
    if len(sizes) != len(times):
        raise ValueError("sizes and times must have equal length")
    if len(sizes) < 2:
        raise ValueError("need at least two points to fit a line")
    slope, intercept = np.polyfit(np.asarray(sizes, float), np.asarray(times, float), 1)
    return LinearModel(intercept=float(intercept), slope=float(slope))


def measure_compressor(
    compressor: Compressor,
    num_elements_list: Sequence[int],
    repeats: int = 100,
    seed: int = 0,
) -> Dict[int, Tuple[float, float]]:
    """Profile the *real* numpy kernels, the way the paper's profiler does.

    Runs compress and decompress ``repeats`` times per size and averages.
    Returns ``{num_elements: (compress_seconds, decompress_seconds)}``.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    rng = np.random.default_rng(seed)
    results: Dict[int, Tuple[float, float]] = {}
    for n in num_elements_list:
        tensor = rng.standard_normal(n).astype(np.float32)
        compressed = compressor.compress(tensor, seed=seed)
        start = time.perf_counter()
        for i in range(repeats):
            compressed = compressor.compress(tensor, seed=seed + i)
        compress_avg = (time.perf_counter() - start) / repeats
        start = time.perf_counter()
        for _ in range(repeats):
            compressor.decompress(compressed)
        decompress_avg = (time.perf_counter() - start) / repeats
        results[n] = (compress_avg, decompress_avg)
    return results
