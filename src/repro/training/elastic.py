"""Elastic worker membership for the data-parallel trainer.

Real DDL jobs gain and lose workers mid-flight — preemptible instances,
hardware failures, autoscaling.  A compression-aware training service
must survive that without losing the error-feedback residuals that make
biased compressors convergent, and without keeping a compression
strategy that is now wrong for the topology.  This module supplies the
event layer on top of
:meth:`~repro.training.engine.DataParallelTrainer.set_membership`:

* :class:`MembershipEvent` — a scheduled worker-count change at a step
  boundary (join and leave are both just "the membership becomes K").
* :class:`ElasticController` — segments ``train()`` around the events,
  applies the membership mechanics (deterministic re-shard +
  mass-conserving residual redistribution), and — when given a
  :class:`~repro.core.robust.DegradationTable` — replans the
  compression strategy for the new topology via
  :meth:`~repro.core.robust.DegradationTable.replan` inside its time
  budget, mapping the worker count onto the cluster's machine count
  with :class:`MembershipFault`.
* :class:`MembershipLog` — an auditable record of every change: shard
  sizes, residual-mass conservation error, and the replan outcome.

The residual-redistribution rule (DESIGN.md §5.6): for every tensor,
the sum of the departing membership's residuals is divided equally
among the new membership.  The *sum* is what error feedback re-injects
into future aggregated updates, so the uniform split conserves the
pending compression error exactly (up to float32 rounding measured in
:attr:`MembershipRecord.residual_mass_error`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import JobConfig
from repro.core.robust import DegradationTable, ReplanLedger, ReplanResult
from repro.sim.faults import Fault, FaultModel
from repro.training.engine import DataParallelTrainer, TrainingCurve


@dataclass(frozen=True)
class MembershipEvent:
    """The membership becomes ``workers`` when the trainer reaches ``step``."""

    step: int
    workers: int

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


@dataclass(frozen=True)
class MembershipFault(Fault):
    """Map a membership change onto the DDL job's cluster topology.

    The training engine's K workers stand in for the cluster's K
    machines (one data-parallel rank per machine); a join/leave is
    therefore a perfectly ordinary perturbed job — same design rule as
    :mod:`repro.sim.faults`: faults perturb inputs, never the engine —
    so the replan path prices candidate strategies on the new topology
    with the unmodified simulator.
    """

    num_machines: int

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ValueError(
                f"num_machines must be >= 1, got {self.num_machines}"
            )

    def apply(self, job: JobConfig) -> JobConfig:
        cluster = job.system.cluster.with_machines(self.num_machines)
        return replace(job, system=replace(job.system, cluster=cluster))

    def describe(self) -> str:
        return f"membership change: {self.num_machines} machines"


def membership_model(workers: int) -> FaultModel:
    """The :class:`FaultModel` naming the post-change topology."""
    return FaultModel(
        name=f"membership-{workers}", faults=(MembershipFault(workers),)
    )


@dataclass
class MembershipRecord:
    """One applied membership change, with its replan outcome."""

    step: int
    old_workers: int
    new_workers: int
    #: Post-change per-worker shard sizes (deterministic re-shard).
    shard_sizes: Tuple[int, ...]
    #: Max-norm of (sum of residuals after − before); float32 rounding
    #: only, ~0 — the mass-conservation check of the redistribution rule.
    residual_mass_error: float
    replan: Optional[ReplanResult] = None

    @property
    def within_budget(self) -> Optional[bool]:
        """Replan-budget verdict (None when no table was configured)."""
        return None if self.replan is None else self.replan.within_budget

    def summary(self) -> str:
        line = (
            f"step {self.step}: {self.old_workers} -> {self.new_workers} "
            f"workers, shards {list(self.shard_sizes)}, "
            f"residual mass error {self.residual_mass_error:.3g}"
        )
        if self.replan is not None:
            verdict = "within" if self.replan.within_budget else "OVER"
            line += (
                f"; replanned via {self.replan.source!r} in "
                f"{self.replan.seconds * 1e3:.1f} ms "
                f"({verdict} budget {self.replan.budget_seconds * 1e3:.1f} ms)"
            )
        return line


@dataclass
class MembershipLog:
    """Ordered record of every membership change in a run."""

    records: List[MembershipRecord] = field(default_factory=list)

    def append(self, record: MembershipRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def summary(self) -> str:
        if not self.records:
            return "no membership changes"
        return "\n".join(record.summary() for record in self.records)


class ElasticController:
    """Drive a trainer through scheduled membership changes.

    Args:
        events: worker-count changes, strictly increasing in step.
        table: optional precomputed
            :class:`~repro.core.robust.DegradationTable`; when present,
            every membership change replans the compression strategy
            for the new topology within ``budget_seconds``.
        budget_seconds: *per-event* replan time budget; defaults to
            twice the worst single-plan time observed while building
            the table (enough room for a full planner run, still
            bounded).  Per-event means a storm of K events may spend up
            to K budgets in total — bound that with ``ledger``.
        ledger: optional shared :class:`~repro.core.robust.ReplanLedger`
            charging every replan against one cumulative budget; once
            exhausted, further replans answer from the precomputed
            candidates only and report ``within_budget=False``.
    """

    def __init__(
        self,
        events: Sequence[MembershipEvent],
        table: Optional[DegradationTable] = None,
        budget_seconds: Optional[float] = None,
        ledger: Optional[ReplanLedger] = None,
    ):
        events = tuple(events)
        for previous, current in zip(events, events[1:]):
            if current.step <= previous.step:
                raise ValueError(
                    f"events must be strictly increasing in step, got "
                    f"{previous.step} then {current.step}"
                )
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValueError(
                f"budget_seconds must be > 0, got {budget_seconds}"
            )
        self.events = events
        self.table = table
        self.budget_seconds = budget_seconds
        self.ledger = ledger
        self.log = MembershipLog()

    def _replan_budget(self) -> float:
        if self.budget_seconds is not None:
            return self.budget_seconds
        assert self.table is not None
        # Twice the worst observed plan time: room for one full planner
        # run plus the candidate scoring, never unbounded.
        return max(2.0 * self.table.max_plan_seconds, 1e-3)

    def _apply(self, trainer: DataParallelTrainer, event: MembershipEvent) -> None:
        old_workers = trainer.workers
        totals_before = trainer.residual_totals()
        trainer.set_membership(event.workers)
        totals_after = trainer.residual_totals()
        error = 0.0
        for key, before in totals_before.items():
            after = totals_after.get(key)
            if after is None:
                error = float("inf")
                break
            error = max(
                error, float(np.max(np.abs(after - before), initial=0.0))
            )
        replan = None
        if self.table is not None:
            budget = self._replan_budget()
            replan = self.table.replan(
                membership_model(event.workers),
                budget_seconds=budget,
                ledger=self.ledger,
            )
        self.log.append(
            MembershipRecord(
                step=event.step,
                old_workers=old_workers,
                new_workers=event.workers,
                shard_sizes=trainer.shard_sizes,
                residual_mass_error=error,
                replan=replan,
            )
        )

    def run(
        self,
        trainer: DataParallelTrainer,
        steps: int,
        eval_every: int = 20,
        checkpoint_dir=None,
        checkpoint_every: int = 0,
    ) -> TrainingCurve:
        """Train ``steps`` further iterations, applying events en route.

        Events falling at or before the trainer's current step are
        skipped (a restored checkpoint already reflects them — the
        worker count is part of the trainer's state); events beyond the
        target are left for a later call.  Returns the trainer's
        cumulative curve.
        """
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        target = trainer.step + steps
        for event in self.events:
            if event.step < trainer.step:
                continue
            if event.step == trainer.step:
                # Covers both a step-0 event on a fresh job and a
                # restored checkpoint torn between the boundary write
                # and the membership change: apply only if the change
                # is not already reflected in the trainer.
                if trainer.workers != event.workers:
                    self._apply(trainer, event)
                    if checkpoint_dir is not None and checkpoint_every:
                        trainer.save(checkpoint_dir)
                continue
            if event.step > target:
                break
            span = event.step - trainer.step
            trainer.train(
                span,
                eval_every=eval_every,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
            )
            self._apply(trainer, event)
            if checkpoint_dir is not None and checkpoint_every:
                # Re-publish the boundary checkpoint with the new
                # membership so a crash right here cannot resurrect the
                # pre-change state at the same step.
                trainer.save(checkpoint_dir)
        if trainer.step < target:
            trainer.train(
                target - trainer.step,
                eval_every=eval_every,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
            )
        return trainer.curve
