"""GraVAC-style adaptive compression-ratio control at training time.

The planner decides *how* to compress each tensor; this module decides
*how hard* to compress as training progresses.  GraVAC's observation is
that the tolerable compression ratio is not a constant of the job: early
training survives aggressive sparsification, while loss plateaus often
mean the gradient signal no longer fits through the current ratio.  The
:class:`AdaptiveRatioController` watches the training loss in windows,
compares each window to the previous one, and walks the active ratio
along a ladder:

* **tighten** (next smaller ratio, more compression) while the loss is
  still improving beyond ``tighten_threshold`` — the run is earning its
  bandwidth savings;
* **relax** (next larger ratio, less compression) when the loss stalls
  or regresses — give the gradients more wire bits back.

The trainer shares one compressor object across all of its simulated
workers (``DataParallelTrainer._feedback`` wraps the same instance), so
assigning ``compressor.ratio`` retunes every replica at once — exactly
the property the checkpoint schema relies on (the schema names the
algorithm, not the ratio, so adaptation never invalidates checkpoints).

A ratio move changes every compressed tensor's wire bytes, which means
the previously selected strategy was priced for a different job.  When
the controller is given a :class:`~repro.core.robust.DegradationTable`,
each accepted move replans through
:meth:`~repro.core.robust.DegradationTable.replan` with the move modeled
as a :class:`~repro.sim.faults.RatioChange` fault — the planning side
answers inside its usual time budget and the decision records whether it
did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.options import DEFAULT_RATIO_LADDER
from repro.sim.faults import FaultModel, RatioChange


@dataclass
class RatioDecision:
    """One accepted ratio move (and the replan it triggered, if any)."""

    step: int
    previous: float
    ratio: float
    direction: str  # "tighten" | "relax"
    #: Loss improvement of the window that triggered the move, as a
    #: fraction of the previous window's mean loss.
    loss_improvement: float
    #: Wire-bytes reduction factor vs FP32 at the *new* ratio, for the
    #: trainer's parameter volume (GraVAC's compression gain).
    compression_gain: float
    #: Outcome of the budgeted replan, when a table was attached.
    replan: Optional[object] = None

    def summary(self) -> str:
        line = (
            f"step {self.step}: {self.direction} {self.previous:g} -> "
            f"{self.ratio:g} (window loss {self.loss_improvement:+.2%}, "
            f"gain {self.compression_gain:.0f}x)"
        )
        if self.replan is not None:
            line += (
                f"; replanned via {self.replan.source} in "
                f"{self.replan.seconds * 1e3:.0f} ms"
                f" ({'within' if self.replan.within_budget else 'OVER'}"
                f" budget)"
            )
        return line


class AdaptiveRatioController:
    """Walks the active compression ratio along a ladder at runtime.

    Args:
        trainer: a :class:`~repro.training.engine.DataParallelTrainer`
            whose compressor exposes a ``ratio`` attribute (randomk /
            topk / dgc).
        ladder: the ratios the controller may select, any order; stored
            ascending.  The compressor's current ratio joins the ladder
            if absent, so the controller always starts on a rung.
        window: steps per loss window; the controller decides once per
            window boundary.
        tighten_threshold: minimum fractional loss improvement between
            windows that justifies tightening one rung.
        relax_threshold: improvement below this (e.g. a stall or a
            regression) relaxes one rung.  Between the thresholds the
            ratio holds.
        table: optional :class:`~repro.core.robust.DegradationTable`;
            every accepted move replans through its budgeted path.
        replan_budget_seconds: the time budget handed to each replan.
    """

    def __init__(
        self,
        trainer,
        ladder: Sequence[float] = DEFAULT_RATIO_LADDER,
        window: int = 4,
        tighten_threshold: float = 0.01,
        relax_threshold: float = 0.0,
        table=None,
        replan_budget_seconds: float = 5.0,
    ):
        compressor = trainer.compressor
        if not hasattr(compressor, "ratio"):
            raise ValueError(
                f"compressor {type(compressor).__name__} has no ratio "
                f"knob; adaptive ratio control needs randomk/topk/dgc"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if relax_threshold > tighten_threshold:
            raise ValueError(
                f"relax_threshold ({relax_threshold}) must not exceed "
                f"tighten_threshold ({tighten_threshold})"
            )
        rungs = set(float(r) for r in ladder)
        for rung in rungs:
            if not 0.0 < rung <= 1.0:
                raise ValueError(f"ladder ratios must be in (0, 1], got {rung}")
        rungs.add(float(compressor.ratio))
        self.ladder: List[float] = sorted(rungs)
        self.trainer = trainer
        self.window = window
        self.tighten_threshold = tighten_threshold
        self.relax_threshold = relax_threshold
        self.table = table
        self.replan_budget_seconds = replan_budget_seconds
        self.decisions: List[RatioDecision] = []
        self._losses: List[float] = []
        self._previous_mean: Optional[float] = None
        self._elements = sum(
            value.size for value in trainer.model.params.values()
        )

    @property
    def ratio(self) -> float:
        """The active ratio (read through the shared compressor)."""
        return float(self.trainer.compressor.ratio)

    def compression_gain(self, ratio: Optional[float] = None) -> float:
        """Wire-bytes reduction vs FP32 for the trainer's parameters."""
        compressor = self.trainer.compressor
        dense = self._elements * 4.0
        compressed = compressor.compressed_nbytes(self._elements)
        if ratio is not None and hasattr(compressor, "error_energy"):
            # Scale by the relative ratio: compressed_nbytes prices the
            # *active* ratio; a hypothetical rung scales linearly in k.
            compressed *= ratio / self.ratio
        return dense / max(compressed, 1.0)

    def observe(self, loss: float) -> Optional[RatioDecision]:
        """Feed one step's training loss; decide at window boundaries.

        Returns the accepted :class:`RatioDecision` when the window that
        just closed moved the ratio, else None.
        """
        self._losses.append(float(loss))
        if len(self._losses) < self.window:
            return None
        mean = sum(self._losses) / len(self._losses)
        self._losses.clear()
        previous, self._previous_mean = self._previous_mean, mean
        if previous is None:
            return None
        scale = abs(previous) if previous != 0.0 else 1.0
        improvement = (previous - mean) / scale
        index = self.ladder.index(self.ratio)
        if improvement >= self.tighten_threshold and index > 0:
            return self._move(index - 1, "tighten", improvement)
        if improvement < self.relax_threshold and index < len(self.ladder) - 1:
            return self._move(index + 1, "relax", improvement)
        return None

    def _move(
        self, index: int, direction: str, improvement: float
    ) -> RatioDecision:
        previous = self.ratio
        ratio = self.ladder[index]
        # One shared compressor object: this retunes every worker's
        # error-feedback path at once.
        self.trainer.compressor.ratio = ratio
        replan = None
        if self.table is not None:
            fault = FaultModel(
                name=f"ratio-{ratio:g}", faults=(RatioChange(ratio),)
            )
            replan = self.table.replan(
                fault, budget_seconds=self.replan_budget_seconds
            )
        decision = RatioDecision(
            step=self.trainer.step,
            previous=previous,
            ratio=ratio,
            direction=direction,
            loss_improvement=improvement,
            compression_gain=self.compression_gain(),
            replan=replan,
        )
        self.decisions.append(decision)
        return decision
