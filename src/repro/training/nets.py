"""A small numpy MLP with manual backprop for the convergence experiments.

Parameters and gradients are exposed as ordered ``{name: array}`` dicts —
the same per-tensor granularity the rest of the library reasons about, so
compression strategies apply tensor by tensor exactly as in DDL.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

Params = Dict[str, np.ndarray]


class MLP:
    """Two-hidden-layer ReLU MLP with softmax cross-entropy loss."""

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)

        def _init(fan_in: int, fan_out: int) -> np.ndarray:
            scale = np.sqrt(2.0 / fan_in)
            return (rng.standard_normal((fan_in, fan_out)) * scale).astype(np.float32)

        self.params: Params = {
            "fc1.weight": _init(num_features, hidden),
            "fc1.bias": np.zeros(hidden, dtype=np.float32),
            "fc2.weight": _init(hidden, hidden),
            "fc2.bias": np.zeros(hidden, dtype=np.float32),
            "fc3.weight": _init(hidden, num_classes),
            "fc3.bias": np.zeros(num_classes, dtype=np.float32),
        }

    def parameter_names(self) -> List[str]:
        return list(self.params)

    def _forward(self, x: np.ndarray) -> Tuple[np.ndarray, dict]:
        p = self.params
        z1 = x @ p["fc1.weight"] + p["fc1.bias"]
        a1 = np.maximum(z1, 0.0)
        z2 = a1 @ p["fc2.weight"] + p["fc2.bias"]
        a2 = np.maximum(z2, 0.0)
        logits = a2 @ p["fc3.weight"] + p["fc3.bias"]
        cache = {"x": x, "z1": z1, "a1": a1, "z2": z2, "a2": a2}
        return logits, cache

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions for a batch."""
        logits, _ = self._forward(np.asarray(x, dtype=np.float32))
        return np.argmax(logits, axis=1)

    def loss_and_gradients(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, Params]:
        """Mean cross-entropy loss and per-parameter gradients."""
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        logits, cache = self._forward(x)
        n = x.shape[0]
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        loss = float(-np.mean(np.log(probs[np.arange(n), y] + 1e-12)))

        dlogits = probs
        dlogits[np.arange(n), y] -= 1.0
        dlogits /= n

        grads: Params = {}
        grads["fc3.weight"] = cache["a2"].T @ dlogits
        grads["fc3.bias"] = dlogits.sum(axis=0)
        da2 = dlogits @ self.params["fc3.weight"].T
        dz2 = da2 * (cache["z2"] > 0)
        grads["fc2.weight"] = cache["a1"].T @ dz2
        grads["fc2.bias"] = dz2.sum(axis=0)
        da1 = dz2 @ self.params["fc2.weight"].T
        dz1 = da1 * (cache["z1"] > 0)
        grads["fc1.weight"] = cache["x"].T @ dz1
        grads["fc1.bias"] = dz1.sum(axis=0)
        return loss, {k: v.astype(np.float32) for k, v in grads.items()}

    def apply_update(self, updates: Params) -> None:
        """Subtract per-parameter updates (already scaled by the LR)."""
        for name, delta in updates.items():
            self.params[name] -= delta

    def clone_params(self) -> Params:
        return {k: v.copy() for k, v in self.params.items()}

    def load_params(self, params: Params) -> None:
        for name in self.params:
            self.params[name] = params[name].copy()
