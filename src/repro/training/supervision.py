"""Training-engine fault supervision: injection, retry, degradation.

Production DDL runs do not get to assume healthy compressors and full
worker membership for the whole job.  This module supplies the
:class:`~repro.training.engine.DataParallelTrainer` with a supervision
layer:

* :class:`CompressorFault` — the exception class the trainer treats as
  a (possibly transient) compression failure.
* :class:`CompressorFaultSpec` / :class:`TrainingSupervisor` — scripted
  fault injection (per-tensor, per-step, transient or permanent), retry
  policy with exponential backoff, and scheduled worker dropout.
* :class:`FlakyCompressor` — a wrapper that makes a real compressor
  raise :class:`CompressorFault` on chosen ``compress()`` call indices,
  for tests that want the failure to originate inside the compressor
  rather than from the injection hook.

The degradation contract (tested in ``tests/training/``): when retries
are exhausted for a tensor, the trainer permanently falls back to
``NoCompression`` *for that tensor only*, on every worker, reusing the
same error-feedback state — the accumulated residual is flushed into
the next exact update (not dropped) and then zeroed (not
double-applied), and the run keeps all replicas bitwise-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compression.base import CompressedTensor, Compressor
from repro.utils.backoff import backoff_delay


class CompressorFault(RuntimeError):
    """A gradient compressor failed (kernel fault, OOM, worker error)."""


@dataclass(frozen=True)
class CompressorFaultSpec:
    """Scripted compressor failures for one tensor.

    Attributes:
        tensor: the tensor (parameter name) whose compression fails.
        step: first training step at which compress attempts fail.
        failures: number of consecutive failing *attempts* (a transient
            fault that heals after retries); ``None`` means every
            attempt from ``step`` on fails (a permanent fault — the
            trainer will exhaust retries and degrade the tensor).
    """

    tensor: str
    step: int = 0
    failures: Optional[int] = None

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.failures is not None and self.failures < 1:
            raise ValueError(
                f"failures must be >= 1 or None, got {self.failures}"
            )


@dataclass
class TrainingSupervisor:
    """Fault-injection schedule plus the trainer's resilience policy.

    Attributes:
        compressor_faults: scripted per-tensor compressor failures.
        worker_dropout: ``{worker index: step}`` — the worker leaves the
            job at the start of that step and never returns; remaining
            workers carry the iteration (gradient averaged over the
            active membership).
        max_retries: compress attempts retried per (step, tensor) before
            the tensor is degraded to the fallback compressor.
        retry_backoff: simulated seconds of the first retry's backoff;
            retry ``k`` waits ``retry_backoff * 2**(k-1)``.  Accumulated
            into :attr:`backoff_seconds` and surfaced on the trainer's
            time axis.
    """

    compressor_faults: Sequence[CompressorFaultSpec] = ()
    worker_dropout: Dict[int, int] = field(default_factory=dict)
    max_retries: int = 2
    retry_backoff: float = 0.05

    #: Total simulated backoff delay spent on retries.
    backoff_seconds: float = 0.0
    #: (step, tensor, message) log of every fault observed.
    fault_log: List[Tuple[int, str, str]] = field(default_factory=list)
    _consumed: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        for worker, step in self.worker_dropout.items():
            if worker < 0 or step < 0:
                raise ValueError(
                    f"worker_dropout entries must be non-negative, "
                    f"got {{{worker}: {step}}}"
                )
        self._specs = {spec.tensor: spec for spec in self.compressor_faults}

    # -- injection -------------------------------------------------------

    def inject(self, step: int, tensor: str) -> None:
        """Raise :class:`CompressorFault` if the schedule says so."""
        spec = self._specs.get(tensor)
        if spec is None or step < spec.step:
            return
        if spec.failures is not None:
            consumed = self._consumed.get(tensor, 0)
            if consumed >= spec.failures:
                return
            self._consumed[tensor] = consumed + 1
        raise CompressorFault(
            f"injected compressor fault: tensor {tensor!r} at step {step}"
        )

    # -- policy ----------------------------------------------------------

    def record_fault(self, step: int, tensor: str, message: str) -> None:
        self.fault_log.append((step, tensor, message))

    def backoff(self, attempt: int) -> None:
        """Charge the exponential backoff of retry ``attempt`` (1-based)."""
        self.backoff_seconds += backoff_delay(attempt, self.retry_backoff)

    def active_workers(self, step: int, workers: int) -> List[int]:
        """Worker indices still in the job at ``step``."""
        active = [
            w
            for w in range(workers)
            if w not in self.worker_dropout or step < self.worker_dropout[w]
        ]
        if not active:
            raise RuntimeError(
                f"all {workers} workers dropped by step {step}; "
                f"training cannot continue"
            )
        return active

    # -- checkpointing ---------------------------------------------------

    def state_dict(self) -> Dict:
        """The supervisor's *mutable* accounting, for checkpointing.

        The schedule (fault specs, dropout, retry policy) is
        configuration, reconstructed by whoever builds the supervisor;
        what must survive a crash is the accounting the curve's time
        axis and the injection bookkeeping depend on: accumulated
        backoff seconds, the fault log, and how many scripted failures
        each tensor has already consumed.
        """
        return {
            "backoff_seconds": self.backoff_seconds,
            "fault_log": [list(entry) for entry in self.fault_log],
            "consumed": dict(self._consumed),
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore the accounting captured by :meth:`state_dict`."""
        self.backoff_seconds = float(state["backoff_seconds"])
        self.fault_log = [
            (int(step), str(tensor), str(message))
            for step, tensor, message in state["fault_log"]
        ]
        self._consumed = {
            str(tensor): int(count)
            for tensor, count in state["consumed"].items()
        }


class FlakyCompressor(Compressor):
    """Wrap a compressor so chosen ``compress()`` calls raise.

    Call indices count every compress invocation across workers and
    tensors (deterministic: the trainer iterates workers and tensors in
    a fixed order).  ``fail_calls`` lists transiently failing indices;
    ``fail_from`` makes every call at or after that index fail.
    """

    is_identity = False

    def __init__(
        self,
        inner: Compressor,
        fail_calls: Sequence[int] = (),
        fail_from: Optional[int] = None,
    ):
        self.inner = inner
        self.name = f"flaky-{inner.name}"
        self.work_factor = inner.work_factor
        self.calls = 0
        self.faults_raised = 0
        self._fail_calls = frozenset(fail_calls)
        self._fail_from = fail_from

    def compress(
        self, tensor: np.ndarray, seed: Optional[int] = None
    ) -> CompressedTensor:
        call = self.calls
        self.calls += 1
        if call in self._fail_calls or (
            self._fail_from is not None and call >= self._fail_from
        ):
            self.faults_raised += 1
            raise CompressorFault(f"injected fault on compress call {call}")
        return self.inner.compress(tensor, seed=seed)

    def decompress(self, compressed: CompressedTensor) -> np.ndarray:
        return self.inner.decompress(compressed)

    def compressed_nbytes(self, num_elements: int) -> int:
        return self.inner.compressed_nbytes(num_elements)

    def state_dict(self) -> Dict:
        """Call-counter state, so a checkpointed run resumes with the
        same fault schedule position (the failure indices are counted
        over the whole job, not one process lifetime)."""
        return {"calls": self.calls, "faults_raised": self.faults_raised}

    def load_state_dict(self, state: Dict) -> None:
        self.calls = int(state["calls"])
        self.faults_raised = int(state["faults_raised"])
