"""Crash-consistent training checkpoints.

A checkpoint is one file holding the *complete* state a
:class:`~repro.training.engine.DataParallelTrainer` needs to resume
bit-identically: model parameters, momentum velocity, every worker's
error-feedback residuals, the step counter, degraded-tensor set,
cumulative training curve, and the supervisor's backoff/fault
accounting.  Losing the residuals would silently break the convergence
guarantee of biased compressors (Top-k, Random-k, EFSignSGD), so they
are first-class checkpoint citizens, not an optimization.

Durability contract (the crash-consistency story):

* **Atomic publication** — the state is written to a temporary file in
  the same directory, flushed and ``fsync``\\ ed, then ``os.replace``\\ d
  onto the final name, and the directory entry is fsynced.  A crash
  (including SIGKILL) at any point leaves either the previous
  checkpoint set or the previous set plus one complete new file —
  never a half-written visible checkpoint.
* **Self-validation** — every file carries a magic tag, a format
  version, the body length, and a CRC32 of the body.  Truncation, bit
  flips, or a foreign file fail :func:`load_checkpoint` with a
  one-line :class:`CheckpointError` (the CLI maps it to exit code 2).
* **Newest-valid fallback** — :func:`latest_valid_checkpoint` scans a
  directory newest-step-first and returns the first checkpoint that
  validates, reporting the corrupt ones it skipped; it raises only
  when checkpoints exist but none validate.

The body is a pickled dict of numpy arrays and plain scalars; the
schema of that dict is owned by the trainer
(``DataParallelTrainer.state_dict``), which additionally embeds its
hyperparameters and refuses to restore into a mismatched trainer.
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: File magic identifying a repro training checkpoint.
MAGIC = b"ESPRCKPT"
#: On-disk format version; bumped on any incompatible layout change.
FORMAT_VERSION = 1

#: magic (8s) + format version (u32) + body CRC32 (u32) + body length (u64).
_HEADER = struct.Struct("<8sIIQ")

_NAME_RE = re.compile(r"^ckpt-(\d{8})\.ckpt$")


class CheckpointError(Exception):
    """A checkpoint cannot be written, read, or restored (CLI exit 2)."""


def checkpoint_path(directory: os.PathLike, step: int) -> Path:
    """The canonical checkpoint filename for ``step`` inside ``directory``."""
    if step < 0:
        raise ValueError(f"step must be >= 0, got {step}")
    return Path(directory) / f"ckpt-{step:08d}.ckpt"


def checkpoint_step(path: os.PathLike) -> Optional[int]:
    """The step encoded in a checkpoint filename, or None for other files."""
    match = _NAME_RE.match(Path(path).name)
    return int(match.group(1)) if match else None


def save_checkpoint(path: os.PathLike, state: Dict) -> None:
    """Atomically write ``state`` to ``path`` (write-temp + fsync + rename).

    The temporary file lives in the target directory (same filesystem,
    so the final ``os.replace`` is atomic) and is removed on any
    failure; a crash mid-write can only leave an invisible ``.tmp``
    file behind, which directory scans ignore.
    """
    path = Path(path)
    payload = pickle.dumps(state, protocol=4)
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)


def _fsync_directory(directory: Path) -> None:
    """Persist the directory entry of a just-renamed checkpoint."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on dirs
        pass
    finally:
        os.close(fd)


def load_checkpoint(path: os.PathLike) -> Dict:
    """Read and validate a checkpoint, raising one-line diagnostics.

    Every failure mode — missing file, foreign magic, unsupported
    version, truncation, CRC mismatch, undecodable body — raises
    :class:`CheckpointError` whose message fits on one line (the CLI
    prints it verbatim and exits 2).
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(f"checkpoint not found: {path}") from None
    except IsADirectoryError:
        raise CheckpointError(f"checkpoint is a directory: {path}") from None
    if len(blob) < _HEADER.size:
        raise CheckpointError(
            f"corrupt checkpoint {path}: truncated header "
            f"({len(blob)} of {_HEADER.size} bytes)"
        )
    magic, version, crc, body_len = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise CheckpointError(
            f"corrupt checkpoint {path}: bad magic (not a repro checkpoint)"
        )
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint {path}: format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    body = blob[_HEADER.size:]
    if len(body) != body_len:
        raise CheckpointError(
            f"corrupt checkpoint {path}: truncated body "
            f"({len(body)} of {body_len} bytes)"
        )
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise CheckpointError(
            f"corrupt checkpoint {path}: body CRC mismatch (bit rot or "
            f"torn write)"
        )
    try:
        state = pickle.loads(body)
    except Exception as error:
        raise CheckpointError(
            f"corrupt checkpoint {path}: undecodable body ({error})"
        ) from None
    if not isinstance(state, dict):
        raise CheckpointError(
            f"corrupt checkpoint {path}: body is not a state dict"
        )
    return state


def list_checkpoints(directory: os.PathLike) -> List[Path]:
    """Checkpoint files in ``directory``, newest step first.

    Only canonically-named files (``ckpt-<step>.ckpt``) are considered;
    temporaries from interrupted writes are invisible here.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [
        (step, path)
        for path in directory.iterdir()
        if (step := checkpoint_step(path)) is not None
    ]
    return [path for _, path in sorted(found, reverse=True)]


def latest_valid_checkpoint(
    directory: os.PathLike,
) -> Optional[Tuple[Path, Dict, List[Tuple[Path, CheckpointError]]]]:
    """The newest checkpoint in ``directory`` that validates.

    Returns ``(path, state, skipped)`` where ``skipped`` lists the
    newer-but-corrupt files that were refused, or ``None`` when the
    directory holds no checkpoints at all.  Raises
    :class:`CheckpointError` when checkpoints exist but every one is
    corrupt — resuming silently from scratch would be data loss.
    """
    paths = list_checkpoints(directory)
    if not paths:
        return None
    skipped: List[Tuple[Path, CheckpointError]] = []
    for path in paths:
        try:
            return path, load_checkpoint(path), skipped
        except CheckpointError as error:
            skipped.append((path, error))
    raise CheckpointError(
        f"no valid checkpoint in {directory}: all {len(skipped)} candidates "
        f"corrupt (newest: {skipped[0][1]})"
    )
