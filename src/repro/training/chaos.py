"""Chaos-replay harness: kill the trainer, restart it, demand equality.

The crash-consistency claim of :mod:`repro.training.checkpoint` is only
worth something if it survives actual process death.  This module makes
that testable and scriptable (``repro chaos``):

* :class:`TrainingJobSpec` — a fully-deterministic description of a
  synthetic training job (dataset, compressor, membership, scripted
  faults) that can be rebuilt identically in any process, so the
  harness and its SIGKILL'd children agree on what "the same job" is.
* :func:`fingerprint` — a JSON-safe digest of everything the resume
  property quantifies over: parameter and velocity hashes, per-worker
  residual hashes, step counter, degraded tensors, the cumulative
  curve, and the supervisor's backoff/fault accounting.
* :func:`run_inprocess` — kills ``train()`` at scripted steps via
  :class:`~repro.training.engine.SimulatedCrash`, abandons the trainer
  object, and recovers a fresh one from the newest valid checkpoint.
* :func:`run_sigkill` — the same drill with real process death: a
  subprocess (:mod:`repro.training.chaos_worker`) SIGKILLs itself at
  the scripted step (uncatchable — no ``atexit``, no flushing, exactly
  what a crashed trainer looks like) and the next launch resumes from
  whatever checkpoints survived.
* :func:`corruption_drill` — bit-flips the newest checkpoint and
  demands recovery fall back to the newest *valid* one while the
  corrupt file is refused with a one-line diagnostic.

Every drill ends by comparing fingerprints against an uninterrupted
run of the same spec — recovery that loses a residual, a curve point,
or a second of backoff accounting fails loudly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compression.registry import create_compressor
from repro.training.checkpoint import (
    CheckpointError,
    list_checkpoints,
    load_checkpoint,
)
from repro.training.data import Dataset, make_classification
from repro.training.engine import DataParallelTrainer, SimulatedCrash
from repro.training.supervision import (
    CompressorFaultSpec,
    FlakyCompressor,
    TrainingSupervisor,
)

#: Compressors whose constructor takes a sparsification ratio.
RATIO_ALGORITHMS = ("randomk", "topk", "dgc")


@dataclass(frozen=True)
class TrainingJobSpec:
    """A deterministic synthetic training job, rebuildable anywhere.

    Serializes to JSON so the SIGKILL worker subprocess reconstructs
    the *identical* trainer (same dataset, compressor, supervisor
    schedule) from a single command-line argument.
    """

    gc: str = "dgc"
    ratio: float = 0.05
    workers: int = 2
    steps: int = 24
    eval_every: int = 6
    checkpoint_every: int = 4
    batch_size: int = 16
    hidden: int = 16
    learning_rate: float = 0.1
    momentum: float = 0.9
    step_seconds: float = 1.0
    seed: int = 0
    samples: int = 240
    features: int = 12
    classes: int = 3
    informative: int = 6
    data_seed: int = 7
    #: Compress-call indices at which a FlakyCompressor wrapper raises.
    flaky_fail_calls: Tuple[int, ...] = ()
    #: (tensor, step, failures-or-None) scripted supervisor faults.
    fault_specs: Tuple[Tuple[str, int, Optional[int]], ...] = ()
    #: (worker, step) scheduled dropouts.
    worker_dropout: Tuple[Tuple[int, int], ...] = ()
    max_retries: int = 2
    retry_backoff: float = 0.01

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )

    def build_dataset(self) -> Dataset:
        return make_classification(
            samples=self.samples,
            features=self.features,
            classes=self.classes,
            informative=self.informative,
            seed=self.data_seed,
        )

    def build_trainer(self) -> DataParallelTrainer:
        params = (
            {"ratio": self.ratio} if self.gc in RATIO_ALGORITHMS else {}
        )
        compressor = create_compressor(self.gc, **params)
        if self.flaky_fail_calls:
            compressor = FlakyCompressor(
                compressor, fail_calls=self.flaky_fail_calls
            )
        supervisor = TrainingSupervisor(
            compressor_faults=tuple(
                CompressorFaultSpec(tensor, step, failures)
                for tensor, step, failures in self.fault_specs
            ),
            worker_dropout=dict(self.worker_dropout),
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
        )
        return DataParallelTrainer(
            self.build_dataset(),
            compressor=compressor,
            workers=self.workers,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            momentum=self.momentum,
            hidden=self.hidden,
            step_seconds=self.step_seconds,
            seed=self.seed,
            supervisor=supervisor,
        )

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TrainingJobSpec":
        raw = json.loads(text)
        for key in ("flaky_fail_calls", "fault_specs", "worker_dropout"):
            raw[key] = tuple(
                tuple(item) if isinstance(item, list) else item
                for item in raw.get(key, ())
            )
        return cls(**raw)


def _digest(array: np.ndarray) -> str:
    hasher = hashlib.sha256()
    hasher.update(str(array.dtype).encode())
    hasher.update(str(array.shape).encode())
    hasher.update(np.ascontiguousarray(array).tobytes())
    return hasher.hexdigest()


def fingerprint(trainer: DataParallelTrainer) -> Dict:
    """A JSON-safe digest of the trainer's complete resumable state."""
    return {
        "step": trainer.step,
        "workers": trainer.workers,
        "params": {
            name: _digest(value)
            for name, value in sorted(trainer.model.params.items())
        },
        "velocity": {
            name: _digest(value)
            for name, value in sorted(trainer._velocity.items())
        },
        "residuals": [
            {
                str(key): _digest(value)
                for key, value in sorted(feedback.state_dict().items())
            }
            for feedback in trainer._feedback
        ],
        "degraded_tensors": sorted(trainer.degraded_tensors),
        "curve": trainer.curve.state_dict(),
        "backoff_seconds": trainer.supervisor.backoff_seconds,
        "fault_log": [list(entry) for entry in trainer.supervisor.fault_log],
    }


def diff_fingerprints(expected: Dict, actual: Dict) -> List[str]:
    """Top-level fingerprint keys on which two runs disagree."""
    keys = sorted(set(expected) | set(actual))
    return [key for key in keys if expected.get(key) != actual.get(key)]


@dataclass
class Recovery:
    """One crash and the checkpoint state recovery restarted from."""

    crash_step: int
    restored_step: int

    @property
    def recomputed_steps(self) -> int:
        """Steps lost to the crash and re-executed after restore."""
        return self.crash_step - self.restored_step


@dataclass
class ChaosResult:
    """Outcome of one chaos drill mode against the baseline run."""

    mode: str
    crash_steps: Tuple[int, ...]
    recoveries: List[Recovery]
    fingerprint: Dict
    mismatched_keys: List[str]

    @property
    def equivalent(self) -> bool:
        return not self.mismatched_keys

    def summary(self) -> str:
        verdict = "EQUIVALENT" if self.equivalent else (
            f"MISMATCH on {self.mismatched_keys}"
        )
        recovered = ", ".join(
            f"killed@{r.crash_step}->resumed@{r.restored_step}"
            for r in self.recoveries
        ) or "no kills"
        return f"[{self.mode}] {recovered}: {verdict}"


def sample_crash_steps(steps: int, kills: int, seed: int) -> Tuple[int, ...]:
    """``kills`` distinct crash steps in ``[1, steps)``, deterministic."""
    if steps < 2 or kills < 1:
        return ()
    rng = np.random.default_rng(seed)
    population = np.arange(1, steps)
    chosen = rng.choice(
        population, size=min(kills, population.size), replace=False
    )
    return tuple(sorted(int(step) for step in chosen))


def run_uninterrupted(spec: TrainingJobSpec) -> Dict:
    """Fingerprint of the job trained start-to-finish in one life."""
    trainer = spec.build_trainer()
    trainer.train(spec.steps, eval_every=spec.eval_every)
    return fingerprint(trainer)


def run_inprocess(
    spec: TrainingJobSpec,
    crash_steps: Sequence[int],
    directory: Path,
    baseline: Dict,
) -> ChaosResult:
    """Crash via :class:`SimulatedCrash`, recover from checkpoints."""
    directory = Path(directory)
    trainer = spec.build_trainer()
    recoveries: List[Recovery] = []
    pending = list(sorted(set(crash_steps)))
    while True:
        # Each scripted kill fires exactly once — a restore point
        # earlier than an already-fired kill must not re-arm it.
        crash_at = pending.pop(0) if pending else None
        remaining = spec.steps - trainer.step
        if remaining <= 0:
            break
        try:
            trainer.train(
                remaining,
                eval_every=spec.eval_every,
                checkpoint_dir=directory,
                checkpoint_every=spec.checkpoint_every,
                crash_at=crash_at,
            )
        except SimulatedCrash:
            # The dying trainer is abandoned: recovery must come from
            # disk alone, exactly like a real process death.
            dead_step = trainer.step
            trainer = spec.build_trainer()
            trainer.resume_from(directory)
            recoveries.append(Recovery(dead_step, trainer.step))
    actual = fingerprint(trainer)
    return ChaosResult(
        mode="inprocess",
        crash_steps=tuple(sorted(set(crash_steps))),
        recoveries=recoveries,
        fingerprint=actual,
        mismatched_keys=diff_fingerprints(baseline, actual),
    )


def _run_worker(
    spec: TrainingJobSpec,
    directory: Path,
    out: Path,
    kill_at_step: Optional[int] = None,
    timeout: float = 300.0,
) -> subprocess.CompletedProcess:
    command = [
        sys.executable,
        "-m",
        "repro.training.chaos_worker",
        "--job",
        spec.to_json(),
        "--dir",
        str(directory),
        "--out",
        str(out),
    ]
    if kill_at_step is not None:
        command += ["--kill-at-step", str(kill_at_step)]
    return subprocess.run(
        command, capture_output=True, text=True, timeout=timeout
    )


def _parse_restored_step(stdout: str) -> int:
    for line in stdout.splitlines():
        if line.startswith("RESUMED step="):
            return int(line.split("=", 2)[1].split()[0])
        if line.startswith("FRESH"):
            return 0
    return 0


def run_sigkill(
    spec: TrainingJobSpec,
    crash_steps: Sequence[int],
    directory: Path,
    baseline: Dict,
) -> ChaosResult:
    """Crash via real SIGKILL in a subprocess, recover on relaunch."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out = directory / "fingerprint.json"
    recoveries: List[Recovery] = []
    previous_crash: Optional[int] = None
    for crash in sorted(set(crash_steps)):
        result = _run_worker(spec, directory, out, kill_at_step=crash)
        # Each launch's RESUMED banner reports where it restored after
        # the *previous* kill (the first launch starts FRESH).
        if previous_crash is not None:
            recoveries.append(
                Recovery(previous_crash, _parse_restored_step(result.stdout))
            )
        if result.returncode != -signal.SIGKILL:
            raise RuntimeError(
                f"chaos worker survived its scripted SIGKILL at step "
                f"{crash}: exit {result.returncode}\n{result.stderr}"
            )
        previous_crash = crash
    final = _run_worker(spec, directory, out)
    if final.returncode != 0:
        raise RuntimeError(
            f"chaos worker failed on the recovery run: exit "
            f"{final.returncode}\n{final.stderr}"
        )
    if previous_crash is not None:
        recoveries.append(
            Recovery(previous_crash, _parse_restored_step(final.stdout))
        )
    actual = json.loads(out.read_text())
    return ChaosResult(
        mode="sigkill",
        crash_steps=tuple(sorted(set(crash_steps))),
        recoveries=recoveries,
        fingerprint=actual,
        mismatched_keys=diff_fingerprints(baseline, actual),
    )


def corrupt_file(path: Path, offset_fraction: float = 0.6) -> None:
    """Bit-flip one byte of ``path`` (a deliberate checkpoint injury)."""
    path = Path(path)
    blob = bytearray(path.read_bytes())
    if not blob:
        raise ValueError(f"cannot corrupt empty file {path}")
    index = min(len(blob) - 1, int(len(blob) * offset_fraction))
    blob[index] ^= 0xFF
    path.write_bytes(bytes(blob))


def corruption_drill(
    spec: TrainingJobSpec, directory: Path, baseline: Dict
) -> ChaosResult:
    """Crash mid-run, bit-flip the newest checkpoint, demand fallback.

    The newest surviving checkpoint is deliberately corrupted; recovery
    must (a) refuse it — explicit loads raise the one-line
    :class:`CheckpointError` the CLI maps to exit 2 — and (b) fall back
    to the newest *valid* checkpoint, re-execute the lost steps, and
    still end bit-identical to the uninterrupted run.
    """
    directory = Path(directory)
    # Crash late enough that at least two checkpoints exist.
    crash = min(spec.steps - 1, 2 * spec.checkpoint_every + 1)
    trainer = spec.build_trainer()
    try:
        trainer.train(
            spec.steps,
            eval_every=spec.eval_every,
            checkpoint_dir=directory,
            checkpoint_every=spec.checkpoint_every,
            crash_at=crash,
        )
    except SimulatedCrash:
        pass
    checkpoints = list_checkpoints(directory)
    if len(checkpoints) < 2:
        raise RuntimeError(
            f"corruption drill needs >= 2 checkpoints, found "
            f"{len(checkpoints)} in {directory}"
        )
    newest = checkpoints[0]
    corrupt_file(newest)
    try:
        load_checkpoint(newest)
    except CheckpointError:
        pass
    else:
        raise RuntimeError(
            f"corrupted checkpoint {newest} was not refused by the loader"
        )
    trainer = spec.build_trainer()
    restored = trainer.resume_from(directory)
    if restored is None or Path(restored) == newest:
        raise RuntimeError(
            f"recovery did not fall back past the corrupt {newest}"
        )
    recovery = Recovery(crash, trainer.step)
    trainer.train(
        spec.steps - trainer.step,
        eval_every=spec.eval_every,
        checkpoint_dir=directory,
        checkpoint_every=spec.checkpoint_every,
    )
    actual = fingerprint(trainer)
    return ChaosResult(
        mode="corruption",
        crash_steps=(crash,),
        recoveries=[recovery],
        fingerprint=actual,
        mismatched_keys=diff_fingerprints(baseline, actual),
    )
