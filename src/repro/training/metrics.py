"""Classification metrics for the convergence experiments (§5.4)."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions (the paper's Top-1 accuracy)."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    if predictions.size == 0:
        raise ValueError("empty predictions")
    return float(np.mean(predictions == labels))


def macro_f1(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Macro-averaged F1 (the paper reports F1 for BERT on SQuAD)."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must have the same shape")
    classes = np.union1d(np.unique(predictions), np.unique(labels))
    scores = []
    for cls in classes:
        tp = float(np.sum((predictions == cls) & (labels == cls)))
        fp = float(np.sum((predictions == cls) & (labels != cls)))
        fn = float(np.sum((predictions != cls) & (labels == cls)))
        if tp == 0.0:
            scores.append(0.0)
            continue
        precision = tp / (tp + fp)
        recall = tp / (tp + fn)
        scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores))
