"""Subprocess entry point for the SIGKILL chaos drill.

Runs one *process life* of a checkpointed training job: resume from the
newest valid checkpoint in ``--dir`` (or start fresh), train toward the
job's target, and either die by real ``SIGKILL`` at the scripted step
or finish and write the run's fingerprint JSON.  Invoked as::

    python -m repro.training.chaos_worker --job '<spec json>' \\
        --dir /path/to/ckpts --out /path/to/fingerprint.json \\
        [--kill-at-step N]

Exit codes: ``0`` finished (fingerprint written), ``2`` unusable
checkpoint state (all candidates corrupt — one-line diagnostic on
stderr), killed by ``SIGKILL`` when ``--kill-at-step`` fires.  The kill
is delivered by the process to itself so the death is uncatchable and
deterministic — no ``atexit``, no buffered-write flushing, exactly the
crash the checkpoint layer claims to survive.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
from pathlib import Path
from typing import List, Optional

from repro.training.chaos import TrainingJobSpec, fingerprint
from repro.training.checkpoint import CheckpointError
from repro.training.engine import SimulatedCrash

#: Exit code for unusable checkpoint state, matching the CLI convention.
EXIT_USAGE = 2


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.training.chaos_worker",
        description="one process life of a checkpointed chaos-drill job",
    )
    parser.add_argument("--job", required=True,
                        help="TrainingJobSpec JSON (or @path to a file)")
    parser.add_argument("--dir", required=True,
                        help="checkpoint directory shared across lives")
    parser.add_argument("--out", required=True,
                        help="where the finishing life writes its fingerprint")
    parser.add_argument("--kill-at-step", type=int, default=None,
                        help="SIGKILL self right after this absolute step")
    args = parser.parse_args(argv)

    job_text = args.job
    if job_text.startswith("@"):
        job_text = Path(job_text[1:]).read_text()
    spec = TrainingJobSpec.from_json(job_text)
    trainer = spec.build_trainer()
    try:
        restored = trainer.resume_from(args.dir)
    except CheckpointError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    if restored is not None:
        print(f"RESUMED step={trainer.step} from={restored}", flush=True)
    else:
        print("FRESH step=0", flush=True)

    remaining = spec.steps - trainer.step
    if remaining > 0:
        try:
            trainer.train(
                remaining,
                eval_every=spec.eval_every,
                checkpoint_dir=args.dir,
                checkpoint_every=spec.checkpoint_every,
                crash_at=args.kill_at_step,
            )
        except SimulatedCrash:
            os.kill(os.getpid(), signal.SIGKILL)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(fingerprint(trainer), sort_keys=True))
    print(f"DONE step={trainer.step}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
