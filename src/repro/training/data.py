"""Synthetic datasets for the convergence-validation experiments (§5.4).

The paper fine-tunes BERT on SQuAD and trains ResNet101 on ImageNet to
show that Espresso's compression strategies preserve accuracy.  The
mechanism being validated — error-feedback compression in the gradient
path of synchronous data-parallel SGD — is dataset-agnostic, so we use
controllable synthetic tasks where convergence can actually be reached
in a test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """A supervised dataset split into train and test."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def num_classes(self) -> int:
        return int(self.train_y.max()) + 1

    @property
    def num_features(self) -> int:
        return self.train_x.shape[1]


def make_classification(
    samples: int = 2000,
    features: int = 32,
    classes: int = 4,
    informative: int = 16,
    noise: float = 0.6,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> Dataset:
    """A gaussian-prototype classification task with label noise.

    Each class has a random prototype in an ``informative``-dimensional
    subspace; samples are the prototype plus isotropic noise, embedded in
    ``features`` dimensions.  Hard enough that training accuracy moves
    over tens of epochs, easy enough that an MLP converges.
    """
    if informative > features:
        raise ValueError("informative must be <= features")
    rng = np.random.default_rng(seed)
    prototypes = rng.standard_normal((classes, informative)) * 2.0
    labels = rng.integers(0, classes, size=samples)
    data = np.zeros((samples, features), dtype=np.float64)
    data[:, :informative] = prototypes[labels] + rng.standard_normal(
        (samples, informative)
    ) * noise
    data[:, informative:] = rng.standard_normal((samples, features - informative))
    permutation = rng.permutation(samples)
    data, labels = data[permutation], labels[permutation]
    split = int(samples * (1.0 - test_fraction))
    return Dataset(
        train_x=data[:split].astype(np.float32),
        train_y=labels[:split].astype(np.int64),
        test_x=data[split:].astype(np.float32),
        test_y=labels[split:].astype(np.int64),
    )


def shard_dataset(dataset: Dataset, workers: int) -> Tuple[np.ndarray, ...]:
    """Split the training set into ``workers`` equal contiguous shards.

    Returns a tuple of (x, y) pairs, one per worker — the data-parallel
    partitioning of §2.1.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    xs = np.array_split(dataset.train_x, workers)
    ys = np.array_split(dataset.train_y, workers)
    return tuple(zip(xs, ys))
