"""Data-parallel SGD with gradient compression (the §5.4 experiment).

Simulates K synchronous workers on one process: each worker holds a data
shard and an error-feedback state; every step, workers compute gradients
on their own mini-batches, compress them (with error feedback), the
"network" aggregates the decompressed gradients, and all replicas apply
the same SGD update — bitwise-identical replicas, like real synchronous
DDL.  Wall-clock per step can be taken from the DDL timeline simulator
to plot time-to-accuracy (Fig. 16(b)).

Recoverability (this file + :mod:`repro.training.checkpoint`):

* **Counter-based batch sampling** — worker ``i``'s mini-batch at step
  ``s`` is drawn from a fresh generator keyed on ``(seed, i, s)``, so a
  draw never depends on how many other workers drew before it.  That is
  what makes the engine *restartable* (re-executing a step after a
  crash redraws the same batches) and *elastic* (a membership change or
  a worker dropout does not reshuffle the surviving workers' data).
* **Checkpoint / restore** — :meth:`DataParallelTrainer.state_dict`
  captures everything the update rule depends on: parameters, momentum
  velocity, per-worker error-feedback residuals, the step counter and
  absolute training target, the degraded-tensor set, the cumulative
  curve with its pending-loss buffer, the supervisor's backoff/fault
  accounting, and (when the compressor exposes ``state_dict``) the
  compressor's own counters.  Restore is bit-identical: ``train(N)``
  equals train-to-``k`` → checkpoint → restore → train-to-``N`` on
  every replica, for every compressor in the registry.
* **Elastic membership** — :meth:`DataParallelTrainer.set_membership`
  re-shards the dataset deterministically and redistributes the
  error-feedback residuals mass-conservingly (see
  :mod:`repro.training.elastic` for the event layer and the replan
  hook).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

import numpy as np

from repro.compression.base import Compressor
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.none import NoCompression
from repro.training.checkpoint import (
    CheckpointError,
    checkpoint_path,
    latest_valid_checkpoint,
    save_checkpoint,
)
from repro.training.data import Dataset, shard_dataset
from repro.training.nets import MLP
from repro.training.supervision import CompressorFault, TrainingSupervisor


class SimulatedCrash(RuntimeError):
    """Raised by ``train(..., crash_at=s)`` right after step ``s``.

    The chaos harness's in-process kill: the trainer object is
    abandoned where a real process would have died, and recovery must
    come from the checkpoint directory alone.
    """


@dataclass
class TrainingCurve:
    """Per-evaluation-point training history."""

    steps: List[int] = field(default_factory=list)
    seconds: List[float] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ValueError("no evaluations recorded")
        return self.test_accuracy[-1]

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated seconds to first reach ``target`` accuracy, if ever."""
        for seconds, accuracy in zip(self.seconds, self.test_accuracy):
            if accuracy >= target:
                return seconds
        return None

    def state_dict(self) -> Dict:
        return {
            "steps": list(self.steps),
            "seconds": list(self.seconds),
            "train_loss": list(self.train_loss),
            "test_accuracy": list(self.test_accuracy),
        }

    @classmethod
    def from_state_dict(cls, state: Dict) -> "TrainingCurve":
        return cls(
            steps=[int(v) for v in state["steps"]],
            seconds=[float(v) for v in state["seconds"]],
            train_loss=[float(v) for v in state["train_loss"]],
            test_accuracy=[float(v) for v in state["test_accuracy"]],
        )


class DataParallelTrainer:
    """Synchronous data-parallel SGD with per-tensor gradient compression."""

    def __init__(
        self,
        dataset: Dataset,
        compressor: Optional[Compressor] = None,
        workers: int = 4,
        batch_size: int = 32,
        learning_rate: float = 0.1,
        momentum: float = 0.9,
        hidden: int = 64,
        step_seconds: float = 1.0,
        seed: int = 0,
        supervisor: Optional[TrainingSupervisor] = None,
    ):
        """Args:
        dataset: the task to train on.
        compressor: GC algorithm applied to every gradient tensor (with
            error feedback); ``None`` trains FP32.
        workers: number of simulated data-parallel workers.
        batch_size: per-worker mini-batch size.
        step_seconds: simulated wall-clock per iteration — wire this to
            the DDL simulator's iteration time to compare time-to-accuracy
            between strategies (Fig. 16).
        supervisor: fault-injection schedule and resilience policy
            (retry with backoff, per-tensor degradation to
            ``NoCompression``, worker dropout).  ``None`` installs a
            default supervisor with no scripted faults, so genuine
            :class:`~repro.training.supervision.CompressorFault`s from
            the compressor itself still degrade gracefully.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if seed < 0:
            raise ValueError(f"seed must be >= 0, got {seed}")
        self.dataset = dataset
        self.compressor = compressor if compressor is not None else NoCompression()
        self.workers = workers
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.hidden = hidden
        self.step_seconds = step_seconds
        self.seed = seed
        self.model = MLP(
            dataset.num_features, dataset.num_classes, hidden=hidden, seed=seed
        )
        self._shards = shard_dataset(dataset, workers)
        self._feedback = [ErrorFeedback(self.compressor) for _ in range(workers)]
        self._velocity: Dict[str, np.ndarray] = {
            name: np.zeros_like(value) for name, value in self.model.params.items()
        }
        self._step = 0
        #: Absolute step the current/most recent ``train`` call runs to.
        self._target_step = 0
        #: Cumulative history across ``train`` calls and restores.
        self.curve = TrainingCurve()
        self._recent_losses: List[float] = []
        self.supervisor = supervisor if supervisor is not None else TrainingSupervisor()
        self._fallback = NoCompression()
        #: Tensors permanently degraded to the fallback compressor after
        #: exhausting their retries.  Global (not per-worker): every
        #: replica must make the same compression decision or the
        #: aggregated update — and therefore the replicas — diverge.
        self.degraded_tensors: Set[str] = set()

    @property
    def step(self) -> int:
        """Absolute number of completed training steps."""
        return self._step

    @property
    def shard_sizes(self) -> tuple:
        """Per-worker training-shard sizes under the current membership."""
        return tuple(x.shape[0] for x, _ in self._shards)

    def _worker_batch(self, worker: int):
        """Worker ``worker``'s mini-batch for the current step.

        Counter-based: the generator is keyed on ``(seed, worker,
        step)``, so the draw is a pure function of those three values —
        independent of every other worker's draws, of dropout, and of
        process restarts.  (The old design pulled all workers from one
        shared stream, so worker i's indices depended on how many
        workers drew before it; any membership change silently
        reshuffled every survivor's data.)
        """
        x, y = self._shards[worker]
        rng = np.random.default_rng((self.seed, worker, self._step))
        idx = rng.integers(0, x.shape[0], size=self.batch_size)
        return x[idx], y[idx]

    def _shared_seed(self, name: str) -> int:
        """Deterministic shared seed per (step, tensor).

        Random-k must pick the same coordinates on every worker *and*
        every process: ``zlib.crc32`` is stable across interpreter runs,
        unlike ``hash()`` whose string hashing is randomized per process
        (PYTHONHASHSEED).
        """
        return zlib.crc32(f"{self._step}:{name}".encode()) & 0x7FFFFFFF

    def _supervised_compress(
        self, feedback: ErrorFeedback, name: str, grad: np.ndarray
    ) -> np.ndarray:
        """Compress + decompress with retry/backoff and degradation.

        A faulting compress leaves the error-feedback residual untouched
        (``ErrorFeedback`` updates state only on success), so retries
        and the eventual fallback both see the full accumulated
        residual: nothing is dropped, nothing applied twice.  Returns
        the decompressed wire tensor this worker contributes to the
        aggregation.
        """
        seed = self._shared_seed(name)
        if name in self.degraded_tensors:
            compressed = feedback.compress(
                name, grad, seed=seed, compressor=self._fallback
            )
            return feedback.decompress(compressed, compressor=self._fallback)
        supervisor = self.supervisor
        attempt = 0
        while True:
            try:
                supervisor.inject(self._step, name)
                compressed = feedback.compress(name, grad, seed=seed)
                return feedback.decompress(compressed)
            except CompressorFault as fault:
                attempt += 1
                supervisor.record_fault(self._step, name, str(fault))
                if attempt > supervisor.max_retries:
                    self.degraded_tensors.add(name)
                    compressed = feedback.compress(
                        name, grad, seed=seed, compressor=self._fallback
                    )
                    return feedback.decompress(
                        compressed, compressor=self._fallback
                    )
                supervisor.backoff(attempt)

    def train_step(self) -> float:
        """One synchronous iteration; returns the mean worker loss."""
        active = self.supervisor.active_workers(self._step, self.workers)
        aggregated: Dict[str, np.ndarray] = {}
        total_loss = 0.0
        for worker in active:
            x, y = self._worker_batch(worker)
            loss, grads = self.model.loss_and_gradients(x, y)
            total_loss += loss
            feedback = self._feedback[worker]
            for name, grad in grads.items():
                decompressed = self._supervised_compress(feedback, name, grad)
                if name in aggregated:
                    aggregated[name] += decompressed
                else:
                    aggregated[name] = decompressed
        updates = {}
        for name, grad_sum in aggregated.items():
            grad = grad_sum / len(active)
            self._velocity[name] = (
                self.momentum * self._velocity[name] + grad
            )
            updates[name] = self.learning_rate * self._velocity[name]
        self.model.apply_update(updates)
        self._step += 1
        return total_loss / len(active)

    def evaluate(self) -> float:
        """Test-set accuracy of the (shared) model replica."""
        predictions = self.model.predict(self.dataset.test_x)
        return float(np.mean(predictions == self.dataset.test_y))

    def _record_evaluation(self, segment: TrainingCurve) -> None:
        seconds = (
            # Retry backoff is wall-clock the job actually spent; the
            # step term is absolute, so the axis survives restarts.
            self._step * self.step_seconds
            + self.supervisor.backoff_seconds
        )
        train_loss = float(np.mean(self._recent_losses))
        test_accuracy = self.evaluate()
        for curve in (self.curve, segment):
            curve.steps.append(self._step)
            curve.seconds.append(seconds)
            curve.train_loss.append(train_loss)
            curve.test_accuracy.append(test_accuracy)
        self._recent_losses.clear()

    def train(
        self,
        steps: int,
        eval_every: int = 20,
        checkpoint_dir: Optional[os.PathLike] = None,
        checkpoint_every: int = 0,
        crash_at: Optional[int] = None,
    ) -> TrainingCurve:
        """Train for ``steps`` further iterations, recording a curve.

        The evaluation target is tracked *absolutely*: this call runs
        to ``self.step + steps``, evaluating at every multiple of
        ``eval_every`` and at the target step — so a second ``train``
        call (or a resumed trainer) records its final curve point
        instead of comparing the absolute counter to a relative budget.

        With ``checkpoint_dir``/``checkpoint_every`` set, an atomic
        checkpoint is written after every ``checkpoint_every``-th step
        (after that step's curve point, so restore resumes exactly
        where the file says).  ``crash_at`` raises
        :class:`SimulatedCrash` right after the given absolute step —
        the chaos harness's in-process kill switch.

        Returns the curve segment recorded by *this* call; the
        cumulative history lives in :attr:`curve`.
        """
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every and checkpoint_dir is None:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        self._target_step = self._step + steps
        segment = TrainingCurve()
        while self._step < self._target_step:
            self._recent_losses.append(self.train_step())
            if self._step % eval_every == 0 or self._step == self._target_step:
                self._record_evaluation(segment)
            if (
                checkpoint_dir is not None
                and checkpoint_every
                and self._step % checkpoint_every == 0
            ):
                self.save(checkpoint_dir)
            if crash_at is not None and self._step >= crash_at:
                raise SimulatedCrash(f"scripted crash after step {self._step}")
        return segment

    # -- elastic membership ----------------------------------------------

    def set_membership(self, new_workers: int) -> None:
        """Change the worker count at a step boundary.

        Mechanics (see DESIGN.md §5.6 for the rationale):

        * the dataset is re-sharded deterministically
          (:func:`~repro.training.data.shard_dataset` is a pure
          function of ``(dataset, workers)``);
        * error-feedback residuals are redistributed under the
          **mass-conserving uniform split**: for every tensor, the sum
          of the old workers' residuals is divided equally among the
          new workers, so the total pending compression error — the
          quantity error feedback re-injects into future aggregated
          updates — is conserved exactly;
        * momentum velocity and model parameters are replica-global
          and unchanged.
        """
        if new_workers < 1:
            raise ValueError(f"workers must be >= 1, got {new_workers}")
        if new_workers == self.workers:
            return
        totals = self.residual_totals()
        self.workers = new_workers
        self._shards = shard_dataset(self.dataset, new_workers)
        self._feedback = [
            ErrorFeedback(self.compressor) for _ in range(new_workers)
        ]
        shares = {
            key: (total / new_workers).astype(np.float32)
            for key, total in totals.items()
        }
        for feedback in self._feedback:
            # load_state_dict deep-copies, so workers do not alias.
            feedback.load_state_dict(shares)

    def residual_totals(self) -> Dict[str, np.ndarray]:
        """Per-tensor sum of all workers' error-feedback residuals."""
        totals: Dict[str, np.ndarray] = {}
        for feedback in self._feedback:
            for key, residual in feedback.state_dict().items():
                if key in totals:
                    totals[key] = totals[key] + residual
                else:
                    totals[key] = residual
        return totals

    # -- checkpointing ----------------------------------------------------

    def _schema(self) -> Dict:
        """The hyperparameters a checkpoint must match to be restorable."""
        return {
            "compressor": self.compressor.name,
            "num_features": self.dataset.num_features,
            "num_classes": self.dataset.num_classes,
            "hidden": self.hidden,
            "batch_size": self.batch_size,
            "learning_rate": self.learning_rate,
            "momentum": self.momentum,
            "step_seconds": self.step_seconds,
            "seed": self.seed,
        }

    def state_dict(self) -> Dict:
        """Everything needed to resume bit-identically (deep copies)."""
        compressor_state = None
        state_fn = getattr(self.compressor, "state_dict", None)
        if callable(state_fn):
            compressor_state = state_fn()
        return {
            "schema": self._schema(),
            "step": self._step,
            "target_step": self._target_step,
            "workers": self.workers,
            "params": self.model.clone_params(),
            "velocity": {k: v.copy() for k, v in self._velocity.items()},
            "residuals": [fb.state_dict() for fb in self._feedback],
            "degraded_tensors": sorted(self.degraded_tensors),
            "curve": self.curve.state_dict(),
            "recent_losses": list(self._recent_losses),
            "supervisor": self.supervisor.state_dict(),
            "compressor_state": compressor_state,
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore :meth:`state_dict` output, refusing mismatched schemas.

        The worker count may differ from the constructor's (an elastic
        run checkpointed after a membership change): shards and
        feedback state are rebuilt for the checkpointed membership.
        """
        schema = state.get("schema")
        mine = self._schema()
        if schema != mine:
            wrong = sorted(
                key
                for key in mine
                if not isinstance(schema, dict) or schema.get(key) != mine[key]
            )
            raise CheckpointError(
                f"checkpoint schema mismatch on {wrong or 'all fields'}: "
                f"refusing to restore into a differently-configured trainer"
            )
        workers = int(state["workers"])
        if workers < 1:
            raise CheckpointError(
                f"checkpoint has invalid worker count {workers}"
            )
        residuals = state["residuals"]
        if len(residuals) != workers:
            raise CheckpointError(
                f"checkpoint is inconsistent: {len(residuals)} residual "
                f"sets for {workers} workers"
            )
        self.workers = workers
        self._shards = shard_dataset(self.dataset, workers)
        self._feedback = [
            ErrorFeedback(self.compressor) for _ in range(workers)
        ]
        for feedback, residual_state in zip(self._feedback, residuals):
            feedback.load_state_dict(residual_state)
        self.model.load_params(state["params"])
        self._velocity = {
            name: np.asarray(value, dtype=np.float32).copy()
            for name, value in state["velocity"].items()
        }
        self._step = int(state["step"])
        self._target_step = int(state["target_step"])
        self.degraded_tensors = set(state["degraded_tensors"])
        self.curve = TrainingCurve.from_state_dict(state["curve"])
        self._recent_losses = [float(v) for v in state["recent_losses"]]
        self.supervisor.load_state_dict(state["supervisor"])
        if state.get("compressor_state") is not None:
            load_fn = getattr(self.compressor, "load_state_dict", None)
            if not callable(load_fn):
                raise CheckpointError(
                    f"checkpoint carries state for compressor "
                    f"{schema['compressor']!r} but "
                    f"{self.compressor.name!r} cannot load it"
                )
            load_fn(state["compressor_state"])

    def save(self, directory: os.PathLike) -> Path:
        """Atomically checkpoint the trainer into ``directory``."""
        path = checkpoint_path(directory, self._step)
        save_checkpoint(path, self.state_dict())
        return path

    def resume_from(self, directory: os.PathLike) -> Optional[Path]:
        """Restore from the newest valid checkpoint in ``directory``.

        Returns the checkpoint path used, or ``None`` when the
        directory holds no checkpoints (fresh start).  Corrupt newer
        files are skipped in favour of the newest valid one; if
        checkpoints exist but none validate, :class:`CheckpointError`
        propagates (the CLI exits 2) rather than silently restarting
        from scratch.
        """
        found = latest_valid_checkpoint(directory)
        if found is None:
            return None
        path, state, _skipped = found
        self.load_state_dict(state)
        return path
