"""Data-parallel SGD with gradient compression (the §5.4 experiment).

Simulates K synchronous workers on one process: each worker holds a data
shard and an error-feedback state; every step, workers compute gradients
on their own mini-batches, compress them (with error feedback), the
"network" aggregates the decompressed gradients, and all replicas apply
the same SGD update — bitwise-identical replicas, like real synchronous
DDL.  Wall-clock per step can be taken from the DDL timeline simulator
to plot time-to-accuracy (Fig. 16(b)).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.compression.base import Compressor
from repro.compression.error_feedback import ErrorFeedback
from repro.compression.none import NoCompression
from repro.training.data import Dataset, shard_dataset
from repro.training.nets import MLP
from repro.training.supervision import CompressorFault, TrainingSupervisor


@dataclass
class TrainingCurve:
    """Per-evaluation-point training history."""

    steps: List[int] = field(default_factory=list)
    seconds: List[float] = field(default_factory=list)
    train_loss: List[float] = field(default_factory=list)
    test_accuracy: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        if not self.test_accuracy:
            raise ValueError("no evaluations recorded")
        return self.test_accuracy[-1]

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Simulated seconds to first reach ``target`` accuracy, if ever."""
        for seconds, accuracy in zip(self.seconds, self.test_accuracy):
            if accuracy >= target:
                return seconds
        return None


class DataParallelTrainer:
    """Synchronous data-parallel SGD with per-tensor gradient compression."""

    def __init__(
        self,
        dataset: Dataset,
        compressor: Optional[Compressor] = None,
        workers: int = 4,
        batch_size: int = 32,
        learning_rate: float = 0.1,
        momentum: float = 0.9,
        hidden: int = 64,
        step_seconds: float = 1.0,
        seed: int = 0,
        supervisor: Optional[TrainingSupervisor] = None,
    ):
        """Args:
        dataset: the task to train on.
        compressor: GC algorithm applied to every gradient tensor (with
            error feedback); ``None`` trains FP32.
        workers: number of simulated data-parallel workers.
        batch_size: per-worker mini-batch size.
        step_seconds: simulated wall-clock per iteration — wire this to
            the DDL simulator's iteration time to compare time-to-accuracy
            between strategies (Fig. 16).
        supervisor: fault-injection schedule and resilience policy
            (retry with backoff, per-tensor degradation to
            ``NoCompression``, worker dropout).  ``None`` installs a
            default supervisor with no scripted faults, so genuine
            :class:`~repro.training.supervision.CompressorFault`s from
            the compressor itself still degrade gracefully.
        """
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.dataset = dataset
        self.compressor = compressor if compressor is not None else NoCompression()
        self.workers = workers
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.step_seconds = step_seconds
        self.model = MLP(
            dataset.num_features, dataset.num_classes, hidden=hidden, seed=seed
        )
        self._shards = shard_dataset(dataset, workers)
        self._feedback = [ErrorFeedback(self.compressor) for _ in range(workers)]
        self._velocity: Dict[str, np.ndarray] = {
            name: np.zeros_like(value) for name, value in self.model.params.items()
        }
        self._rng = np.random.default_rng(seed + 1)
        self._step = 0
        self.supervisor = supervisor if supervisor is not None else TrainingSupervisor()
        self._fallback = NoCompression()
        #: Tensors permanently degraded to the fallback compressor after
        #: exhausting their retries.  Global (not per-worker): every
        #: replica must make the same compression decision or the
        #: aggregated update — and therefore the replicas — diverge.
        self.degraded_tensors: Set[str] = set()

    def _worker_batch(self, worker: int):
        x, y = self._shards[worker]
        idx = self._rng.integers(0, x.shape[0], size=self.batch_size)
        return x[idx], y[idx]

    def _shared_seed(self, name: str) -> int:
        """Deterministic shared seed per (step, tensor).

        Random-k must pick the same coordinates on every worker *and*
        every process: ``zlib.crc32`` is stable across interpreter runs,
        unlike ``hash()`` whose string hashing is randomized per process
        (PYTHONHASHSEED).
        """
        return zlib.crc32(f"{self._step}:{name}".encode()) & 0x7FFFFFFF

    def _supervised_compress(
        self, feedback: ErrorFeedback, name: str, grad: np.ndarray
    ) -> np.ndarray:
        """Compress + decompress with retry/backoff and degradation.

        A faulting compress leaves the error-feedback residual untouched
        (``ErrorFeedback`` updates state only on success), so retries
        and the eventual fallback both see the full accumulated
        residual: nothing is dropped, nothing applied twice.  Returns
        the decompressed wire tensor this worker contributes to the
        aggregation.
        """
        seed = self._shared_seed(name)
        if name in self.degraded_tensors:
            compressed = feedback.compress(
                name, grad, seed=seed, compressor=self._fallback
            )
            return feedback.decompress(compressed, compressor=self._fallback)
        supervisor = self.supervisor
        attempt = 0
        while True:
            try:
                supervisor.inject(self._step, name)
                compressed = feedback.compress(name, grad, seed=seed)
                return feedback.decompress(compressed)
            except CompressorFault as fault:
                attempt += 1
                supervisor.record_fault(self._step, name, str(fault))
                if attempt > supervisor.max_retries:
                    self.degraded_tensors.add(name)
                    compressed = feedback.compress(
                        name, grad, seed=seed, compressor=self._fallback
                    )
                    return feedback.decompress(
                        compressed, compressor=self._fallback
                    )
                supervisor.backoff(attempt)

    def train_step(self) -> float:
        """One synchronous iteration; returns the mean worker loss."""
        active = self.supervisor.active_workers(self._step, self.workers)
        aggregated: Dict[str, np.ndarray] = {}
        total_loss = 0.0
        for worker in active:
            x, y = self._worker_batch(worker)
            loss, grads = self.model.loss_and_gradients(x, y)
            total_loss += loss
            feedback = self._feedback[worker]
            for name, grad in grads.items():
                decompressed = self._supervised_compress(feedback, name, grad)
                if name in aggregated:
                    aggregated[name] += decompressed
                else:
                    aggregated[name] = decompressed
        updates = {}
        for name, grad_sum in aggregated.items():
            grad = grad_sum / len(active)
            self._velocity[name] = (
                self.momentum * self._velocity[name] + grad
            )
            updates[name] = self.learning_rate * self._velocity[name]
        self.model.apply_update(updates)
        self._step += 1
        return total_loss / len(active)

    def evaluate(self) -> float:
        """Test-set accuracy of the (shared) model replica."""
        predictions = self.model.predict(self.dataset.test_x)
        return float(np.mean(predictions == self.dataset.test_y))

    def train(self, steps: int, eval_every: int = 20) -> TrainingCurve:
        """Train for ``steps`` iterations, recording a curve."""
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        curve = TrainingCurve()
        recent_losses: List[float] = []
        for _ in range(steps):
            recent_losses.append(self.train_step())
            if self._step % eval_every == 0 or self._step == steps:
                curve.steps.append(self._step)
                # Retry backoff is wall-clock the job actually spent.
                curve.seconds.append(
                    self._step * self.step_seconds
                    + self.supervisor.backoff_seconds
                )
                curve.train_loss.append(float(np.mean(recent_losses)))
                curve.test_accuracy.append(self.evaluate())
                recent_losses.clear()
        return curve
