"""Numpy data-parallel training engine for convergence validation (§5.4)."""

from repro.training.data import Dataset, make_classification, shard_dataset
from repro.training.engine import DataParallelTrainer, TrainingCurve
from repro.training.metrics import accuracy, macro_f1
from repro.training.nets import MLP
from repro.training.supervision import (
    CompressorFault,
    CompressorFaultSpec,
    FlakyCompressor,
    TrainingSupervisor,
)

__all__ = [
    "Dataset",
    "make_classification",
    "shard_dataset",
    "MLP",
    "DataParallelTrainer",
    "TrainingCurve",
    "accuracy",
    "macro_f1",
    "CompressorFault",
    "CompressorFaultSpec",
    "FlakyCompressor",
    "TrainingSupervisor",
]
