"""Numpy data-parallel training engine for convergence validation (§5.4),
with crash-consistent checkpointing, elastic membership, and the
chaos-replay harness (DESIGN.md §5.6)."""

from repro.training.adaptive import AdaptiveRatioController, RatioDecision
from repro.training.chaos import TrainingJobSpec, fingerprint
from repro.training.checkpoint import (
    CheckpointError,
    checkpoint_path,
    latest_valid_checkpoint,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from repro.training.data import Dataset, make_classification, shard_dataset
from repro.training.elastic import (
    ElasticController,
    MembershipEvent,
    MembershipLog,
    MembershipRecord,
)
from repro.training.engine import (
    DataParallelTrainer,
    SimulatedCrash,
    TrainingCurve,
)
from repro.training.metrics import accuracy, macro_f1
from repro.training.nets import MLP
from repro.training.supervision import (
    CompressorFault,
    CompressorFaultSpec,
    FlakyCompressor,
    TrainingSupervisor,
)

__all__ = [
    "Dataset",
    "make_classification",
    "shard_dataset",
    "MLP",
    "DataParallelTrainer",
    "TrainingCurve",
    "SimulatedCrash",
    "accuracy",
    "macro_f1",
    "CompressorFault",
    "CompressorFaultSpec",
    "FlakyCompressor",
    "TrainingSupervisor",
    "CheckpointError",
    "checkpoint_path",
    "save_checkpoint",
    "load_checkpoint",
    "list_checkpoints",
    "latest_valid_checkpoint",
    "ElasticController",
    "MembershipEvent",
    "MembershipLog",
    "MembershipRecord",
    "TrainingJobSpec",
    "fingerprint",
    "AdaptiveRatioController",
    "RatioDecision",
]
