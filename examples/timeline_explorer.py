#!/usr/bin/env python3
"""Timeline explorer: reproduce the paper's Fig. 2 didactic strategies.

Renders ASCII timelines of the three-tensor example job under the five
strategies of Fig. 2 — (a) no compression, (b) compress only T2 on GPU,
(c) compress everything on GPU, (d) compress everything on CPU, and
(e) Espresso's selection — showing how the same job's iteration time
moves with the compression strategy and why interactions matter.

Run:  python examples/timeline_explorer.py
"""

from repro import Espresso, GCInfo, JobConfig, SystemInfo
from repro.baselines import inter_allgather_option
from repro.cluster import pcie_25g_cluster
from repro.core.options import Device
from repro.core.strategy import StrategyEvaluator
from repro.models import three_tensor_job
from repro.sim.stages import RESOURCES

WIDTH = 76


def render_timeline(timeline, makespan: float) -> str:
    """A crude per-resource ASCII Gantt chart."""
    lines = []
    scale = WIDTH / makespan
    for resource in RESOURCES:
        stages = [s for s in timeline.stages if s.resource == resource]
        if not stages:
            continue
        row = [" "] * WIDTH
        for stage in stages:
            lo = min(WIDTH - 1, int(stage.start * scale))
            hi = min(WIDTH, max(lo + 1, int(stage.end * scale)))
            mark = str(stage.tensor_index % 10)
            for i in range(lo, hi):
                row[i] = mark
        lines.append(f"{resource:>5} |{''.join(row)}|")
    return "\n".join(lines)


def main() -> None:
    job = JobConfig(
        model=three_tensor_job(),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=pcie_25g_cluster(num_machines=4)),
    )
    evaluator = StrategyEvaluator(job)
    fp32 = evaluator.baseline()
    gpu = inter_allgather_option(Device.GPU)
    cpu = inter_allgather_option(Device.CPU)

    strategies = {
        "(a) no compression": fp32,
        "(b) compress T2 on GPU": fp32.replace(2, gpu),
        "(c) compress all on GPU": fp32.replace(0, gpu).replace(1, gpu).replace(2, gpu),
        "(d) compress all on CPU": fp32.replace(0, cpu).replace(1, cpu).replace(2, cpu),
        "(e) Espresso": Espresso(job).select_strategy().strategy,
    }
    horizon = max(evaluator.timeline(s).makespan for s in strategies.values())
    for label, strategy in strategies.items():
        timeline = evaluator.timeline(strategy)
        iteration = evaluator.iteration_time(strategy)
        print(f"{label}  —  iteration {iteration * 1e3:.1f} ms")
        print(render_timeline(timeline, horizon))
        print()


if __name__ == "__main__":
    main()
