#!/usr/bin/env python3
"""Bring your own model: profile, trace, configure, and plan.

Walks the full Espresso input pipeline (paper Fig. 6) for a model that
is *not* in the zoo:

1. Describe the model's tensors (sizes + backprop compute times).
2. Collect 100 jittered execution traces and average them — the paper's
   empirical computation-time model (§4.3).
3. Profile the real numpy compression kernels over tensor sizes and fit
   the ``a + b * nbytes`` model (§4.3).
4. Write the three JSON config files, reload them, and run the planner.

Run:  python examples/custom_model.py
"""

import tempfile
from pathlib import Path

from repro import Espresso, GCInfo, load_job, save_cluster, save_gc, save_model
from repro.cluster import pcie_25g_cluster
from repro.compression import create_compressor
from repro.models import synthetic_model
from repro.profiling import (
    average_traces,
    collect_traces,
    fit_linear,
    measure_compressor,
)
from repro.utils import MB, MS, render_table


def main() -> None:
    # 1. A hand-written model: a wide recommender tower (two embeddings
    #    that dwarf everything else plus a stack of dense layers).
    model = synthetic_model(
        "recsys-tower",
        [
            (int(2 * MB / 4), 4 * MS),    # head
            (int(16 * MB / 4), 7 * MS),   # dense stack
            (int(16 * MB / 4), 7 * MS),
            (int(64 * MB / 4), 9 * MS),   # interaction layer
            (int(420 * MB / 4), 11 * MS),  # item embedding
            (int(640 * MB / 4), 12 * MS),  # user embedding
        ],
        forward_time=25 * MS,
        batch_size=256,
    )

    # 2. Trace-and-average, as Espresso's profiler does.
    traces = collect_traces(model, iterations=100, jitter=0.03, seed=1)
    averaged, worst_std = average_traces(model, traces)
    print(
        f"Averaged {len(traces)} traces; worst normalized std "
        f"{worst_std * 100:.1f}% (paper reports < 5%).\n"
    )

    # 3. Profile the real DGC kernels and fit the linear time model.
    compressor = create_compressor("dgc", ratio=0.01)
    sizes = [1 << 14, 1 << 16, 1 << 18, 1 << 20]
    measured = measure_compressor(compressor, sizes, repeats=5)
    fit = fit_linear(
        [n * 4 for n in sizes], [t_compress for t_compress, _ in measured.values()]
    )
    print(
        f"Measured DGC compression on this host: "
        f"{fit.intercept * 1e6:.0f} us + {fit.slope * 1e9:.2f} ns/byte\n"
    )

    # 4. Round-trip the three config files and plan.
    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        save_model(averaged, tmp_path / "model.json")
        save_gc(GCInfo("dgc", {"ratio": 0.01}), tmp_path / "gc.json")
        save_cluster(pcie_25g_cluster(num_machines=4), tmp_path / "system.json")
        job = load_job(
            tmp_path / "model.json", tmp_path / "gc.json", tmp_path / "system.json"
        )
        result = Espresso(job).select_strategy()

    print(result.summary(), "\n")
    rows = [
        (
            job.model.tensors[i].name,
            f"{job.model.tensors[i].nbytes / 2**20:.0f} MB",
            result.strategy[i].describe(),
        )
        for i in range(job.model.num_tensors)
    ]
    print(render_table(["tensor", "size", "selected option"], rows))


if __name__ == "__main__":
    main()
