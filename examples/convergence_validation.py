#!/usr/bin/env python3
"""Convergence validation (paper §5.4 / Fig. 16).

Trains the same model four ways — FP32, DGC (1%), Random-k (5%), and
EF-SignSGD, all with error feedback — on a synthetic classification task
with 8 simulated data-parallel workers, and attaches each run's simulated
DDL iteration time (from the timeline simulator, ResNet101-style job) so
the time-to-accuracy speedup of compression shows up exactly as in
Fig. 16(b).

Run:  python examples/convergence_validation.py
"""

from repro import Espresso, GCInfo, JobConfig, SystemInfo, get_model
from repro.cluster import nvlink_100g_cluster
from repro.compression import create_compressor
from repro.core.strategy import StrategyEvaluator
from repro.training import DataParallelTrainer, make_classification
from repro.utils import render_table

STEPS = 400
WORKERS = 8


def simulated_step_seconds(algorithm: str, params: dict) -> float:
    """Per-iteration wall-clock from the DDL simulator for this GC config."""
    job = JobConfig(
        model=get_model("bert-base"),
        gc=GCInfo(algorithm, params),
        system=SystemInfo(cluster=nvlink_100g_cluster()),
    )
    if algorithm == "none":
        evaluator = StrategyEvaluator(job)
        return evaluator.iteration_time(evaluator.baseline())
    return Espresso(job).select_strategy().iteration_time


def main() -> None:
    dataset = make_classification(
        samples=3000, features=48, classes=5, noise=2.2, seed=7
    )
    configs = [
        ("FP32", "none", {}),
        ("DGC 1%", "dgc", {"ratio": 0.01}),
        ("Random-k 5%", "randomk", {"ratio": 0.05}),
        ("EF-SignSGD", "efsignsgd", {}),
    ]
    rows = []
    fp32_seconds = None
    for label, algorithm, params in configs:
        step_seconds = simulated_step_seconds(algorithm, params)
        trainer = DataParallelTrainer(
            dataset,
            compressor=create_compressor(algorithm, **params),
            workers=WORKERS,
            # Moderate momentum: high momentum amplifies the bursty
            # error-feedback updates of aggressive sparsifiers.
            momentum=0.5,
            step_seconds=step_seconds,
            seed=3,
        )
        curve = trainer.train(STEPS, eval_every=50)
        total_seconds = STEPS * step_seconds
        if fp32_seconds is None:
            fp32_seconds = total_seconds
        rows.append(
            (
                label,
                f"{curve.final_accuracy * 100:.1f}%",
                f"{step_seconds * 1e3:.0f} ms",
                f"{fp32_seconds / total_seconds:.2f}x",
            )
        )
    print(
        render_table(
            ["scheme", "final accuracy", "iter time", "speedup vs FP32"],
            rows,
            title=f"Convergence after {STEPS} steps, {WORKERS} workers "
            "(iteration times from the BERT-base/64-GPU simulation):",
        )
    )
    print(
        "\nAll compressed runs should land within ~1 accuracy point of "
        "FP32 while iterating faster — the paper's Fig. 16 conclusion."
    )


if __name__ == "__main__":
    main()
