#!/usr/bin/env python3
"""Cluster planning: where does gradient compression pay off?

Sweeps one model (BERT-base + EF-SignSGD) across interconnect
generations and cluster sizes, showing how Espresso's decisions change —
which tensors it compresses, on which device, and how the speedup over
FP32 grows as the network gets slower relative to compute.  This mirrors
the paper's motivation (§2.2): compression matters more the further
network bandwidth lags compute.

Run:  python examples/cluster_planning.py
"""

from repro import Espresso, GCInfo, JobConfig, SystemInfo, get_model
from repro.cluster import nvlink_100g_cluster, pcie_25g_cluster
from repro.core.options import Device
from repro.utils import render_table


def main() -> None:
    model = get_model("bert-base")
    gc = GCInfo("efsignsgd")
    rows = []
    for label, factory in [
        ("NVLink + 100 Gbps", nvlink_100g_cluster),
        ("PCIe + 25 Gbps", pcie_25g_cluster),
    ]:
        for machines in (2, 4, 8):
            cluster = factory(num_machines=machines)
            job = JobConfig(model=model, gc=gc, system=SystemInfo(cluster=cluster))
            result = Espresso(job).select_strategy()
            strategy = result.strategy
            compressed = len(strategy.compressed_indices)
            on_cpu = len(strategy.device_indices(Device.CPU))
            both_phases = sum(
                1
                for option in strategy.options
                if option.compresses_intra and option.compresses_inter
            )
            rows.append(
                (
                    label,
                    cluster.total_gpus,
                    f"{compressed}/{model.num_tensors}",
                    on_cpu,
                    both_phases,
                    f"{(result.speedup_over_fp32 - 1) * 100:+.0f}%",
                )
            )
    print(
        render_table(
            [
                "testbed",
                "GPUs",
                "compressed",
                "on CPU",
                "intra+inter",
                "speedup vs FP32",
            ],
            rows,
            title="Espresso decisions for BERT-base + EF-SignSGD:",
        )
    )
    print(
        "\nExpected shape: more tensors compressed (and more aggressively) "
        "as bandwidth shrinks and the cluster grows; intra-machine "
        "compression appears only on the PCIe testbed."
    )


if __name__ == "__main__":
    main()
