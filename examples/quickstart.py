#!/usr/bin/env python3
"""Quickstart: select a compression strategy for GPT2 on 64 GPUs.

Builds the paper's headline configuration — GPT2 with DGC sparsification
on 8 NVLink machines (64 V100s) over 100 Gbps Ethernet — runs Espresso's
decision algorithm, and prints the selected per-tensor decisions next to
FP32 and the compression baselines.

Run:  python examples/quickstart.py
"""

from repro import Espresso, GCInfo, JobConfig, SystemInfo, get_model
from repro.baselines import ALL_SYSTEMS
from repro.cluster import nvlink_100g_cluster
from repro.core.options import Device
from repro.utils import render_table


def main() -> None:
    job = JobConfig(
        model=get_model("gpt2"),
        gc=GCInfo("dgc", {"ratio": 0.01}),
        system=SystemInfo(cluster=nvlink_100g_cluster(num_machines=8)),
    )

    print(f"Model: {job.model.name} — {job.model.num_tensors} tensors, "
          f"{job.model.size_mb:.0f} MB")
    print(f"Cluster: {job.system.cluster.total_gpus} GPUs "
          f"({job.system.cluster.interconnect} + "
          f"{job.system.cluster.inter_bw / 1e9 * 8:.0f} Gbps equivalent)\n")

    result = Espresso(job).select_strategy()
    print(result.summary(), "\n")

    # Show the decisions for the ten largest tensors.
    rows = []
    order = sorted(
        range(job.model.num_tensors),
        key=lambda i: -job.model.tensors[i].num_elements,
    )[:10]
    for index in sorted(order):
        tensor = job.model.tensors[index]
        option = result.strategy[index]
        if not option.compresses:
            decision = "keep FP32"
        else:
            device = "CPU" if option.uses_device(Device.CPU) else "GPU"
            scope = "intra+inter" if option.compresses_intra else "inter"
            decision = f"compress on {device} ({scope})"
        rows.append((tensor.name, f"{tensor.nbytes / 2**20:.1f} MB", decision))
    print(render_table(["tensor", "size", "decision"], rows,
                       title="Largest tensors:"))

    # Compare against the baseline systems on the same simulator.
    print()
    rows = []
    for system_cls in ALL_SYSTEMS:
        r = system_cls().run(job)
        rows.append((r.name, f"{r.throughput:,.0f} tokens/s",
                     f"{r.scaling_factor:.2f}"))
    print(render_table(["system", "throughput", "scaling factor"], rows,
                       title="End-to-end comparison (64 GPUs):"))


if __name__ == "__main__":
    main()
